#include "control/balancer.h"

#include <algorithm>
#include <sstream>

#include "obs/trace.h"

namespace tmps::control {

Balancer::Balancer(ControlConfig cfg, RuntimeEnv& env, const Overlay& overlay,
                   std::map<BrokerId, MobilityEngine*> engines)
    : cfg_(cfg),
      env_(&env),
      overlay_(&overlay),
      engines_(std::move(engines)),
      estimator_(cfg),
      policy_(cfg, &overlay) {
  if (obs::MetricsRegistry* m = env_->metrics()) {
    g_ratio_ = &m->gauge("control_imbalance_ratio");
    g_engaged_ = &m->gauge("control_engaged");
    g_inflight_ = &m->gauge("control_inflight_movements");
    c_initiated_ = &m->counter("control_movements_initiated_total");
    c_committed_ = &m->counter("control_movements_committed_total");
    c_aborted_ = &m->counter("control_movements_aborted_total");
    c_refused_ = &m->counter("control_movements_refused_total");
    c_suppressed_ = &m->counter("control_cooldown_suppressions_total");
  }
}

void Balancer::start(double deadline) {
  deadline_ = deadline;
  const double first = std::max(cfg_.start_delay, cfg_.sample_interval);
  if (env_->now() + first < deadline_) {
    env_->schedule(first, [this] {
      tick();
      schedule_next();
    });
  }
}

void Balancer::schedule_next() {
  // Respect the deadline so a draining host (Scenario's post-duration
  // run-to-empty) is not kept alive by an immortal control loop.
  if (env_->now() + cfg_.sample_interval >= deadline_) return;
  env_->schedule(cfg_.sample_interval, [this] {
    tick();
    schedule_next();
  });
}

std::map<BrokerId, BrokerSignals> Balancer::gather_signals() const {
  std::map<BrokerId, BrokerSignals> sig;
  const obs::MetricsRegistry* m = env_->metrics();
  for (const auto& [b, engine] : engines_) {
    const obs::Labels labels = {{"broker", std::to_string(b)}};
    BrokerSignals& s = sig[b];
    if (m) {
      s.msgs = m->counter_value("broker_messages_processed_total", labels);
      s.pubs = m->counter_value("broker_publications_processed_total", labels);
      s.deliveries = m->counter_value("broker_deliveries_total", labels);
    }
    const RoutingTables& tables = engine->broker().tables();
    s.prt = tables.sub_count();
    s.srt = tables.adv_count();
    s.clients = engine->hosted_clients();
    if (backlog_) s.backlog_seconds = backlog_(b);
  }
  return sig;
}

std::vector<ClientInfo> Balancer::gather_clients() const {
  std::vector<ClientInfo> out;
  for (const auto& [b, engine] : engines_) {
    const RoutingTables& tables = engine->broker().tables();
    for (const ClientId id : engine->client_ids()) {
      const ClientStub* stub = engine->find_client(id);
      if (!stub) continue;
      ClientInfo info;
      info.id = id;
      info.at = b;
      info.profile =
          stub->subscriptions().size() + stub->advertisements().size();
      info.movable = stub->state() == ClientState::Started ||
                     stub->state() == ClientState::PauseOper;
      // Covered: every subscription is subsumed by some *other* entry of
      // this broker's PRT (shadow-only entries are transaction state, not
      // routing reality — skip them).
      info.covered = !stub->subscriptions().empty();
      for (const Subscription& sub : stub->subscriptions()) {
        bool this_one_covered = false;
        for (const auto& [sid, e] : tables.prt()) {
          if (sid.client == id || e.shadow_only) continue;
          if (e.sub.filter.covers(sub.filter)) {
            this_one_covered = true;
            break;
          }
        }
        if (!this_one_covered) {
          info.covered = false;
          break;
        }
      }
      out.push_back(std::move(info));
    }
  }
  return out;
}

void Balancer::execute(const std::vector<MoveDecision>& plan) {
  // Each movement's profile retraction / re-issue lands on the engine's
  // Broker::inject_batch hand-off paths, so a plan's routing bursts are
  // applied as coalesced forwarding-index batches (RoutingTables::
  // apply_batch) rather than per-entry.
  for (const MoveDecision& d : plan) {
    if (inflight_.size() >= cfg_.max_inflight) break;
    MobilityEngine* engine = engines_.at(d.from);
    MobilityEngine::Outputs out;
    const MoveStart res = engine->try_initiate_move(d.client, d.to, out);
    engine->emit(std::move(out));
    if (!res.started()) {
      // The census is one tick stale; a client can legitimately have moved
      // or paused since. Count it and replan next tick.
      ++state_.refused;
      if (c_refused_) c_refused_->inc();
      continue;
    }
    inflight_[res.txn] = d.client;
    policy_.on_move_started(d.client);
    ++state_.initiated;
    if (c_initiated_) c_initiated_->inc();
    TMPS_EVENT(env_->tracer(), res.txn, "control:migrate",
               {{"client", std::to_string(d.client)},
                {"from", std::to_string(d.from)},
                {"to", std::to_string(d.to)},
                {"ratio", std::to_string(state_.imbalance_ratio)}});
  }
}

void Balancer::tick() {
  ++state_.ticks;
  const double now = env_->now();
  estimator_.sample(now, gather_signals());
  if (!estimator_.ready()) return;

  const std::vector<MoveDecision> plan =
      policy_.plan(estimator_.loads(), gather_clients(), now);
  const PlanDiagnostics& diag = policy_.last_plan();
  state_.imbalance_ratio = diag.ratio;
  state_.engaged = diag.engaged;
  state_.cooldown_suppressed += diag.cooldown_suppressed;
  if (c_suppressed_) c_suppressed_->inc(diag.cooldown_suppressed);

  if (now >= state_.backoff_until) execute(plan);
  export_gauges();
}

void Balancer::on_movement(const MovementRecord& rec) {
  const auto it = inflight_.find(rec.txn);
  if (it == inflight_.end()) return;  // not one of ours
  const ClientId client = it->second;
  inflight_.erase(it);
  policy_.on_move_finished(client, rec.committed, env_->now());
  if (rec.committed) {
    ++state_.committed;
    ++moves_per_client_[client];
    if (c_committed_) c_committed_->inc();
  } else {
    ++state_.aborted;
    state_.backoff_until = env_->now() + cfg_.abort_backoff;
    if (c_aborted_) c_aborted_->inc();
  }
  TMPS_EVENT(env_->tracer(), rec.txn, "control:resolved",
             {{"client", std::to_string(client)},
              {"committed", rec.committed ? "true" : "false"}});
  if (g_inflight_) g_inflight_->set(static_cast<double>(inflight_.size()));
}

void Balancer::export_gauges() {
  state_.inflight = inflight_.size();
  if (!g_ratio_) return;
  g_ratio_->set(state_.imbalance_ratio);
  g_engaged_->set(state_.engaged ? 1.0 : 0.0);
  g_inflight_->set(static_cast<double>(inflight_.size()));
  obs::MetricsRegistry* m = env_->metrics();
  for (const auto& [b, l] : estimator_.loads()) {
    m->gauge("control_broker_load", {{"broker", std::to_string(b)}})
        .set(l.score);
  }
}

std::string Balancer::state_json() const {
  const State& s = state_;
  std::ostringstream os;
  os << "{\"imbalance_ratio\":" << s.imbalance_ratio
     << ",\"engaged\":" << (s.engaged ? "true" : "false")
     << ",\"ticks\":" << s.ticks << ",\"initiated\":" << s.initiated
     << ",\"committed\":" << s.committed << ",\"aborted\":" << s.aborted
     << ",\"refused\":" << s.refused
     << ",\"cooldown_suppressed\":" << s.cooldown_suppressed
     << ",\"inflight\":" << inflight_.size()
     << ",\"backoff_until\":" << s.backoff_until << "}";
  return os.str();
}

}  // namespace tmps::control
