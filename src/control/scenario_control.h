// Glue between the Scenario experiment driver (src/core) and the balancer.
//
// The control plane layers *above* the mobility engines, so the scenario
// does not link against it; instead this helper hangs the balancer off the
// scenario's post_engines / movement_observer hooks. Usage:
//
//   ScenarioConfig cfg = ...;
//   cfg.broker.control.enabled = true;          // or TMPS_BALANCE=1
//   auto handle = control::install_balancer(cfg);
//   Scenario s(std::move(cfg));
//   s.run();
//   handle->balancer->state();                  // results
//
// The handle owns the Balancer (created during Scenario::build, once the
// engines exist); keep it alive until after run(). When the config section
// is disabled the hooks no-op and `handle->balancer` stays null, so callers
// can install unconditionally and branch on the flag.
#pragma once

#include <memory>

#include "control/balancer.h"
#include "core/scenario.h"

namespace tmps::control {

struct BalancerHandle {
  std::unique_ptr<Balancer> balancer;
};

/// Chains onto any hooks already present in `cfg`. The balancer samples the
/// sim's queue backlog (SimNetwork::broker_backlog_seconds) and runs until
/// cfg.duration.
std::shared_ptr<BalancerHandle> install_balancer(ScenarioConfig& cfg);

}  // namespace tmps::control
