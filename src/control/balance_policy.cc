#include "control/balance_policy.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace tmps::control {

std::uint32_t BalancePolicy::moves_of(ClientId client) const {
  const auto it = records_.find(client);
  return it == records_.end() ? 0 : it->second.committed_moves;
}

void BalancePolicy::on_move_started(ClientId client) {
  records_[client].moving = true;
}

void BalancePolicy::on_move_finished(ClientId client, bool committed,
                                     double now) {
  ClientRecord& r = records_[client];
  r.moving = false;
  if (committed) ++r.committed_moves;
  // Aborted movements cool down too: the refusal cause (admission, timeout)
  // is unlikely to clear before the next tick.
  r.cooldown_until = now + cfg_.client_cooldown;
}

std::vector<MoveDecision> BalancePolicy::plan(
    const std::map<BrokerId, BrokerLoad>& loads,
    const std::vector<ClientInfo>& clients, double now) {
  last_ = PlanDiagnostics{};
  if (loads.empty()) {
    engaged_ = false;
    return {};
  }

  // Working copies the greedy loop adjusts after each pick.
  std::map<BrokerId, double> score;
  std::map<BrokerId, std::size_t> population;
  double total = 0, maxv = 0;
  for (const auto& [b, l] : loads) {
    score[b] = l.score;
    population[b] = l.clients;
    total += l.score;
    maxv = std::max(maxv, l.score);
  }
  const double mean = total / static_cast<double>(score.size());
  last_.ratio = mean > 0 ? maxv / mean : 1.0;

  // Hysteresis: engage at the high threshold, stay engaged until the ratio
  // drops through the low one.
  engaged_ = engaged_ ? last_.ratio > cfg_.imbalance_low
                      : last_.ratio >= cfg_.imbalance_high;
  last_.engaged = engaged_;
  if (!engaged_ || mean <= 0) return {};

  // Eligible candidates per broker (cooldown/budget/moving filtered here so
  // suppressions are counted exactly once per plan).
  std::map<BrokerId, std::vector<const ClientInfo*>> eligible;
  for (const ClientInfo& c : clients) {
    if (!c.movable) continue;
    if (const auto it = records_.find(c.id); it != records_.end()) {
      const ClientRecord& r = it->second;
      if (r.moving) continue;
      if (cfg_.max_moves_per_client > 0 &&
          r.committed_moves >= cfg_.max_moves_per_client) {
        continue;
      }
      if (r.cooldown_until > now) {
        ++last_.cooldown_suppressed;
        continue;
      }
    }
    eligible[c.at].push_back(&c);
  }

  // Covered clients first (cannot widen the donor's routing tree), then
  // smaller profiles (cheaper state hand-off), then id (determinism).
  const auto prefer = [](const ClientInfo* a, const ClientInfo* b) {
    if (a->covered != b->covered) return a->covered;
    if (a->profile != b->profile) return a->profile < b->profile;
    return a->id < b->id;
  };

  std::vector<MoveDecision> out;
  while (out.size() < cfg_.max_moves_per_cycle) {
    // Most loaded broker that still has an eligible client.
    BrokerId donor = kNoBroker;
    double donor_score = 0;
    for (const auto& [b, s] : score) {
      const auto it = eligible.find(b);
      if (it == eligible.end() || it->second.empty()) continue;
      if (donor == kNoBroker || s > donor_score) {
        donor = b;
        donor_score = s;
      }
    }
    // Stop once the projected hotspot sits inside the hysteresis band —
    // further moves would only churn clients for no ratio gain.
    if (donor == kNoBroker || donor_score / mean <= cfg_.imbalance_low) break;

    std::vector<const ClientInfo*>& cands = eligible[donor];
    std::sort(cands.begin(), cands.end(), prefer);
    const ClientInfo* pick = cands.front();

    // Target: least projected load, discounted by overlay distance.
    BrokerId target = kNoBroker;
    double best = std::numeric_limits<double>::infinity();
    for (const auto& [b, s] : score) {
      if (b == donor) continue;
      const double cost =
          s / mean + cfg_.path_penalty *
                         static_cast<double>(overlay_->distance(donor, b));
      if (cost < best) {
        best = cost;
        target = b;
      }
    }
    if (target == kNoBroker) break;

    // Project the donor's load as shared evenly by its clients; refuse a
    // move that would merely relocate the hotspot.
    const auto pop = std::max<std::size_t>(population[donor], 1);
    const double share = donor_score / static_cast<double>(pop);
    if (score[target] + share >= donor_score) break;

    score[donor] -= share;
    score[target] += share;
    population[donor] = pop - 1;
    ++population[target];
    cands.erase(cands.begin());
    out.push_back({pick->id, donor, target});
  }
  return out;
}

}  // namespace tmps::control
