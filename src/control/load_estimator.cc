#include "control/load_estimator.h"

namespace tmps::control {

void LoadEstimator::sample(double now,
                           const std::map<BrokerId, BrokerSignals>& signals) {
  const double dt = now - last_time_;
  const bool first = samples_ == 0;
  ++samples_;
  if (first || dt <= 0) {
    last_ = signals;
    last_time_ = now;
    return;
  }
  const double a = cfg_.ewma_alpha;
  for (const auto& [b, sig] : signals) {
    const BrokerSignals& prev = last_[b];  // value-initialized if unseen
    const auto delta = [&](std::uint64_t cur, std::uint64_t old) {
      return cur >= old ? static_cast<double>(cur - old) / dt : 0.0;
    };
    const double deliv_raw = delta(sig.deliveries, prev.deliveries);
    const double transit_raw = delta(sig.pubs, prev.pubs);
    const double msg_raw = delta(sig.msgs, prev.msgs);
    BrokerLoad& l = loads_[b];
    const bool seed = samples_ == 2;  // no smoothed history yet
    l.delivery_rate =
        seed ? deliv_raw : a * deliv_raw + (1 - a) * l.delivery_rate;
    l.transit_rate =
        seed ? transit_raw : a * transit_raw + (1 - a) * l.transit_rate;
    l.pub_rate = l.delivery_rate + l.transit_rate;
    l.msg_rate = seed ? msg_raw : a * msg_raw + (1 - a) * l.msg_rate;
    l.backlog = seed ? sig.backlog_seconds
                     : a * sig.backlog_seconds + (1 - a) * l.backlog;
    l.table = sig.prt + sig.srt;
    l.clients = sig.clients;
    l.score = cfg_.delivery_weight * l.delivery_rate +
              cfg_.pub_weight * l.transit_rate +
              cfg_.msg_weight * l.msg_rate +
              cfg_.table_weight * static_cast<double>(l.table) +
              cfg_.queue_weight * l.backlog;
  }
  last_ = signals;
  last_time_ = now;
}

}  // namespace tmps::control
