#include "control/scenario_control.h"

#include <utility>

namespace tmps::control {

std::shared_ptr<BalancerHandle> install_balancer(ScenarioConfig& cfg) {
  auto handle = std::make_shared<BalancerHandle>();

  auto prev_engines = std::move(cfg.post_engines);
  cfg.post_engines = [handle, prev_engines](Scenario& s) {
    if (prev_engines) prev_engines(s);
    const ControlConfig& ctl = s.config().broker.control;
    if (!ctl.enabled) return;
    handle->balancer = std::make_unique<Balancer>(
        ctl, s.net(), s.net().overlay(), s.engines());
    handle->balancer->set_backlog_fn(
        [net = &s.net()](BrokerId b) { return net->broker_backlog_seconds(b); });
    handle->balancer->start(s.config().duration);
  };

  auto prev_observer = std::move(cfg.movement_observer);
  cfg.movement_observer = [handle, prev_observer](const MovementRecord& rec) {
    if (prev_observer) prev_observer(rec);
    if (handle->balancer) handle->balancer->on_movement(rec);
  };

  return handle;
}

}  // namespace tmps::control
