// HTTP admin surface of the balancer: a `/control` route for the per-host
// HttpAdminServer (transport/http_admin.h) returning one JSON object with
// the control loop's state and the smoothed per-broker load scores.
//
// The balancer's numeric series (imbalance ratio, movements initiated /
// committed / aborted, cooldown suppressions) already land in the host's
// MetricsRegistry, so any /metrics route serving that registry exposes them
// in Prometheus form without extra wiring; this route adds the structured
// at-a-glance view probes and tests want.
#pragma once

#include "control/balancer.h"
#include "transport/http_admin.h"

namespace tmps::control {

/// Registers GET /control on `server`. Call before server.start(); the
/// balancer must outlive the server.
void install_admin_routes(HttpAdminServer& server, const Balancer& balancer);

/// The /control response body (exposed for tests).
std::string control_json(const Balancer& balancer);

}  // namespace tmps::control
