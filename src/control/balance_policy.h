// Migration planning for the load balancer: given smoothed per-broker loads
// and the hosted-client census, decide which clients to move where.
//
// The policy is deliberately conservative — mobility is transactional but
// not free (a movement costs messages proportional to the overlay path,
// Sec. 4.4 of the paper), so every selection mechanism here exists to avoid
// wasted or oscillating migrations:
//
//   * hysteresis — balancing engages when max/mean load reaches
//     `imbalance_high` and keeps planning until it falls to `imbalance_low`,
//     so the system does not flap around a single threshold;
//   * per-client cooldown — a client that just completed a movement is
//     untouchable for `client_cooldown` seconds;
//   * per-client budget — at most `max_moves_per_client` migrations per
//     client per run (the convergence guarantee the bench asserts);
//   * greedy donor draining — each cycle repeatedly picks the most loaded
//     broker and moves one client off it, re-estimating loads after each
//     pick, until the projected ratio is inside the hysteresis band or the
//     cycle budget is spent;
//   * candidate preference — covered clients first (their subscriptions are
//     subsumed by another local subscription, so removing them cannot widen
//     the donor's routing tree), then smaller profiles, then lower id
//     (determinism);
//   * target scoring — least-loaded wins, discounted by `path_penalty` per
//     overlay hop from the donor (short movement paths cost fewer messages
//     and commit faster).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "broker/broker_config.h"
#include "common/ids.h"
#include "control/load_estimator.h"
#include "routing/overlay.h"

namespace tmps::control {

/// One hosted client as the policy sees it.
struct ClientInfo {
  ClientId id = kNoClient;
  BrokerId at = kNoBroker;
  /// Profile size (subscriptions + advertisements) — movement cost proxy.
  std::size_t profile = 0;
  /// Every subscription of this client is covered by another local
  /// subscription (moving it cannot widen the donor's routing tree).
  bool covered = false;
  /// Client is in a movable state (Started/PauseOper) right now.
  bool movable = false;
};

struct MoveDecision {
  ClientId client = kNoClient;
  BrokerId from = kNoBroker;
  BrokerId to = kNoBroker;
};

/// What the last plan() saw — exported as gauges by the balancer.
struct PlanDiagnostics {
  double ratio = 1.0;       ///< max/mean smoothed load score
  bool engaged = false;     ///< hysteresis state after this plan
  std::uint64_t cooldown_suppressed = 0;  ///< candidates skipped (cooldown)
};

class BalancePolicy {
 public:
  BalancePolicy(ControlConfig cfg, const Overlay* overlay)
      : cfg_(cfg), overlay_(overlay) {}

  /// Plans up to `max_moves_per_cycle` migrations for the current loads.
  /// Clients already moving (started, not finished) are never re-selected.
  std::vector<MoveDecision> plan(const std::map<BrokerId, BrokerLoad>& loads,
                                 const std::vector<ClientInfo>& clients,
                                 double now);

  /// Movement-lifecycle bookkeeping, driven by the balancer.
  void on_move_started(ClientId client);
  void on_move_finished(ClientId client, bool committed, double now);

  bool engaged() const { return engaged_; }
  const PlanDiagnostics& last_plan() const { return last_; }
  /// Committed migrations of one client so far.
  std::uint32_t moves_of(ClientId client) const;

 private:
  struct ClientRecord {
    double cooldown_until = 0;
    std::uint32_t committed_moves = 0;
    bool moving = false;
  };

  ControlConfig cfg_;
  const Overlay* overlay_;
  bool engaged_ = false;
  PlanDiagnostics last_;
  std::map<ClientId, ClientRecord> records_;
};

}  // namespace tmps::control
