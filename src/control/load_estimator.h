// Per-broker load estimation for the mobility-driven load balancer.
//
// The estimator turns the raw cumulative signals already published by the
// broker layer (obs::MetricsRegistry counters, routing-table sizes, queue
// backlog) into EWMA-smoothed per-broker rates, and combines them into one
// scalar load score per broker:
//
//   score = delivery_weight * delivery_rate   (local delivery fan-out/s —
//                                              the load migration relocates)
//         + pub_weight   * transit_rate       (matching passes/second,
//                                              mostly topology-bound transit)
//         + msg_weight   * msg_rate           (all broker messages/second)
//         + table_weight * (|PRT| + |SRT|)    (routing-state footprint)
//         + queue_weight * backlog_seconds    (processing queue depth)
//
// Delivery work dominates by default: moving a client relocates its fan-out
// but not the publication transit flowing through overlay hubs, so transit
// is discounted lest the policy chase load it cannot shift. The weights come
// from BrokerConfig::Control so deployments can re-balance on routing-state
// or queueing pressure instead. Smoothing plus the policy's hysteresis keep
// one bursty sample from triggering migrations.
#pragma once

#include <cstdint>
#include <map>

#include "broker/broker_config.h"
#include "common/ids.h"

namespace tmps::control {

/// Raw per-broker sample inputs: cumulative counters plus instantaneous
/// sizes, gathered by the balancer from the engines and metrics registry.
struct BrokerSignals {
  std::uint64_t msgs = 0;        ///< messages processed (cumulative)
  std::uint64_t pubs = 0;        ///< publication matching passes (cumulative)
  std::uint64_t deliveries = 0;  ///< local deliveries (cumulative)
  std::size_t prt = 0;           ///< PRT entries now
  std::size_t srt = 0;           ///< SRT entries now
  std::size_t clients = 0;       ///< hosted clients now
  double backlog_seconds = 0;    ///< processing backlog now
};

/// Smoothed view of one broker, plus the combined score.
struct BrokerLoad {
  double delivery_rate = 0;  ///< EWMA local deliveries per second
  double transit_rate = 0;   ///< EWMA publication matching passes per second
  double pub_rate = 0;       ///< delivery_rate + transit_rate (combined)
  double msg_rate = 0;       ///< EWMA messages per second
  double backlog = 0;   ///< EWMA backlog seconds
  std::size_t table = 0;
  std::size_t clients = 0;
  double score = 0;
};

class LoadEstimator {
 public:
  explicit LoadEstimator(ControlConfig cfg) : cfg_(cfg) {}

  /// Folds one sample (taken at time `now`) into the smoothed loads. The
  /// first sample only seeds the counter baselines — rates need a delta.
  void sample(double now, const std::map<BrokerId, BrokerSignals>& signals);

  /// Smoothed loads after the latest sample (empty until two samples).
  const std::map<BrokerId, BrokerLoad>& loads() const { return loads_; }

  bool ready() const { return samples_ >= 2; }

 private:
  ControlConfig cfg_;
  double last_time_ = 0;
  std::uint64_t samples_ = 0;
  std::map<BrokerId, BrokerSignals> last_;
  std::map<BrokerId, BrokerLoad> loads_;
};

}  // namespace tmps::control
