// The load-balancing control loop: samples broker load, plans migrations
// (balance_policy.h) and executes them as movement transactions through the
// mobility engines.
//
// The balancer is a *client of* the movement protocol, not part of it — it
// initiates movements exactly as an application would (try_initiate_move)
// and learns outcomes from the engines' movement callbacks. The 3PC-style
// transaction keeps every migration atomic and loss-free regardless of what
// the balancer decides, so a bad policy costs messages, never correctness.
// Safety valves on the execution side:
//
//   * at most `max_inflight` balancer-initiated transactions at once;
//   * a global `abort_backoff` pause after any abort/reject (an aborting
//     environment — admission refusals, injected failures, timeouts — must
//     not turn into a retry storm);
//   * ticks stop at the host-provided deadline, so a draining simulation
//     terminates.
//
// Everything observable is exported: `control_*` gauges/counters in the
// host's MetricsRegistry (scraped via /metrics), `control:*` trace events
// tagged with the real movement TxnId (they join the movement's waterfall
// in the trace inspector; the auditor ignores unknown event names), and
// state()/state_json() for the HTTP admin plane (control_admin.h).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "broker/broker_config.h"
#include "control/balance_policy.h"
#include "control/load_estimator.h"
#include "core/mobility_engine.h"
#include "sim/runtime_env.h"

namespace tmps::control {

class Balancer {
 public:
  /// Optional queue-depth probe (the sim host wires
  /// SimNetwork::broker_backlog_seconds; hosts without one leave it unset).
  using BacklogFn = std::function<double(BrokerId)>;

  Balancer(ControlConfig cfg, RuntimeEnv& env, const Overlay& overlay,
           std::map<BrokerId, MobilityEngine*> engines);

  void set_backlog_fn(BacklogFn fn) { backlog_ = std::move(fn); }

  /// Schedules the control loop; ticks run every `sample_interval` until
  /// `env.now() + interval` would pass `deadline` (pass a huge deadline for
  /// an open-ended host).
  void start(double deadline);

  /// Feed every finished movement here (hosts multiplex their movement
  /// callback). Movements the balancer did not initiate are ignored.
  void on_movement(const MovementRecord& rec);

  /// One forced sample+plan+execute cycle (tests; start() drives this).
  void tick();

  struct State {
    double imbalance_ratio = 1.0;
    bool engaged = false;
    std::uint64_t ticks = 0;
    std::uint64_t initiated = 0;
    std::uint64_t committed = 0;
    std::uint64_t aborted = 0;
    std::uint64_t refused = 0;
    std::uint64_t cooldown_suppressed = 0;
    std::size_t inflight = 0;
    double backoff_until = 0;
  };
  const State& state() const { return state_; }
  /// The state as one JSON object (the /control admin route).
  std::string state_json() const;

  /// Committed balancer-initiated migrations per client (convergence
  /// assertions: no client should exceed cfg.max_moves_per_client).
  const std::map<ClientId, std::uint32_t>& moves_per_client() const {
    return moves_per_client_;
  }

  const LoadEstimator& estimator() const { return estimator_; }
  const BalancePolicy& policy() const { return policy_; }

 private:
  void schedule_next();
  std::map<BrokerId, BrokerSignals> gather_signals() const;
  std::vector<ClientInfo> gather_clients() const;
  void execute(const std::vector<MoveDecision>& plan);
  void export_gauges();

  ControlConfig cfg_;
  RuntimeEnv* env_;
  const Overlay* overlay_;
  std::map<BrokerId, MobilityEngine*> engines_;
  BacklogFn backlog_;
  LoadEstimator estimator_;
  BalancePolicy policy_;
  double deadline_ = 0;
  State state_;
  /// Balancer-initiated transactions still in flight: txn -> client.
  std::map<TxnId, ClientId> inflight_;
  std::map<ClientId, std::uint32_t> moves_per_client_;

  // Cached metric handles (registered in the constructor).
  obs::Gauge* g_ratio_ = nullptr;
  obs::Gauge* g_engaged_ = nullptr;
  obs::Gauge* g_inflight_ = nullptr;
  obs::Counter* c_initiated_ = nullptr;
  obs::Counter* c_committed_ = nullptr;
  obs::Counter* c_aborted_ = nullptr;
  obs::Counter* c_refused_ = nullptr;
  obs::Counter* c_suppressed_ = nullptr;
};

}  // namespace tmps::control
