#include "control/control_admin.h"

#include <sstream>

namespace tmps::control {

std::string control_json(const Balancer& balancer) {
  std::ostringstream os;
  os << "{\"state\":" << balancer.state_json() << ",\"loads\":{";
  bool first = true;
  for (const auto& [b, l] : balancer.estimator().loads()) {
    if (!first) os << ",";
    first = false;
    os << "\"" << b << "\":" << l.score;
  }
  os << "}}";
  return os.str();
}

void install_admin_routes(HttpAdminServer& server, const Balancer& balancer) {
  server.add_route("/control", [&balancer] {
    HttpResponse resp;
    resp.content_type = "application/json";
    resp.body = control_json(balancer);
    return resp;
  });
}

}  // namespace tmps::control
