#include "pubsub/workload.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <random>

namespace tmps {
namespace {

struct Interval {
  std::int64_t lo, hi;
};

/// Interval of the i-th (1-based) subscription in each concrete workload.
/// All intervals sit inside [kSpaceLo, kSpaceHi]; covering between
/// subscriptions is exactly interval containment.
Interval interval_of(WorkloadKind k, int i) {
  assert(i >= 1 && i <= 10);
  switch (k) {
    case WorkloadKind::Covered:
      // Root spans the space; leaves are disjoint 500-wide slices.
      if (i == 1) return {kSpaceLo, kSpaceHi};
      return {(i - 2) * 1000, (i - 2) * 1000 + 500};
    case WorkloadKind::Chained:
      // Strictly nested chain: each subscription covers the next.
      return {(i - 1) * 100, kSpaceHi - (i - 1) * 900};
    case WorkloadKind::Tree: {
      // Branching-factor-3 tree: 1 covers {2,3,4}, 2 covers {5,6,7},
      // 3 covers {8,9,10}; 4 and 5..10 are leaves.
      switch (i) {
        case 1: return {0, 10000};
        case 2: return {0, 3300};
        case 3: return {3350, 6650};
        case 4: return {6700, 10000};
        case 5: return {0, 1000};
        case 6: return {1100, 2100};
        case 7: return {2200, 3200};
        case 8: return {3350, 4350};
        case 9: return {4450, 5450};
        default: return {5550, 6550};
      }
    }
    case WorkloadKind::Distinct:
      // Pairwise disjoint; no covering at all.
      return {(i - 1) * 1000, (i - 1) * 1000 + 400};
    case WorkloadKind::Random:
      break;
  }
  assert(false && "Random has no fixed member filters");
  return {0, 0};
}

}  // namespace

const char* to_string(WorkloadKind k) {
  switch (k) {
    case WorkloadKind::Covered: return "covered";
    case WorkloadKind::Chained: return "chained";
    case WorkloadKind::Tree: return "tree";
    case WorkloadKind::Distinct: return "distinct";
    case WorkloadKind::Random: return "random";
  }
  return "?";
}

int covering_degree(WorkloadKind k) {
  switch (k) {
    case WorkloadKind::Covered: return 9;
    case WorkloadKind::Chained: return 1;
    case WorkloadKind::Tree: return 3;
    case WorkloadKind::Distinct: return 0;
    case WorkloadKind::Random: return -1;  // mixed; no single degree
  }
  return -1;
}

Filter workload_filter(WorkloadKind k, int i, std::int64_t group) {
  const Interval iv = interval_of(k, i);
  return Filter::build()
      .attr("class").eq("STOCK")
      .attr("g").eq(group)
      .attr("x").ge(iv.lo).le(iv.hi);
}

Filter workload_filter_at(WorkloadKind k, int i, std::int64_t group,
                          std::uint64_t seed) {
  if (k != WorkloadKind::Random) return workload_filter(k, i, group);
  std::mt19937_64 rng(seed * 0x9E3779B97F4A7C15ull + i + 1);
  std::uniform_int_distribution<int> pick_kind(0, 3);
  constexpr WorkloadKind kinds[] = {WorkloadKind::Covered,
                                    WorkloadKind::Chained, WorkloadKind::Tree,
                                    WorkloadKind::Distinct};
  return workload_filter(kinds[pick_kind(rng)], i, group);
}

std::vector<Filter> workload_filters(WorkloadKind k, std::uint64_t seed,
                                     std::int64_t group) {
  std::vector<Filter> out;
  out.reserve(10);
  for (int i = 1; i <= 10; ++i) {
    out.push_back(workload_filter_at(k, i, group, seed));
  }
  return out;
}

std::vector<int> covering_indices(WorkloadKind k) {
  switch (k) {
    case WorkloadKind::Covered: return {0};
    case WorkloadKind::Chained: return {0, 1, 2, 3, 4, 5, 6, 7, 8};
    case WorkloadKind::Tree: return {0, 1, 2};
    case WorkloadKind::Distinct:
    case WorkloadKind::Random: return {};
  }
  return {};
}

std::vector<int> covered_indices(WorkloadKind k) {
  switch (k) {
    case WorkloadKind::Covered:
    case WorkloadKind::Chained:
    case WorkloadKind::Tree: return {1, 2, 3, 4, 5, 6, 7, 8, 9};
    case WorkloadKind::Distinct:
    case WorkloadKind::Random: return {};
  }
  return {};
}

Filter full_space_advertisement() {
  return Filter::build()
      .attr("class").eq("STOCK")
      .attr("g").ge(std::int64_t{0}).le(kMaxGroup)
      .attr("x").ge(kSpaceLo).le(kSpaceHi);
}

std::vector<BrokerId> zipf_broker_placement(std::uint32_t clients,
                                            std::uint32_t brokers, double skew,
                                            std::uint64_t seed) {
  assert(brokers >= 1);
  // Cumulative weights over broker ranks: weight(r) = 1/r^skew, broker 1
  // carrying rank 1. Sampling by inverse CDF keeps the draw deterministic
  // under a fixed seed regardless of library distribution internals.
  std::vector<double> cum(brokers);
  double total = 0;
  for (std::uint32_t r = 0; r < brokers; ++r) {
    total += 1.0 / std::pow(static_cast<double>(r + 1), skew);
    cum[r] = total;
  }
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> u(0.0, total);
  std::vector<BrokerId> homes;
  homes.reserve(clients);
  for (std::uint32_t k = 0; k < clients; ++k) {
    const double draw = u(rng);
    const auto it = std::lower_bound(cum.begin(), cum.end(), draw);
    const auto rank = static_cast<std::uint32_t>(it - cum.begin());
    homes.push_back(static_cast<BrokerId>(std::min(rank, brokers - 1) + 1));
  }
  return homes;
}

Publication make_publication(PublicationId id, std::int64_t x,
                             std::int64_t group) {
  Publication p;
  p.set_id(id);
  p.set("class", "STOCK");
  p.set("g", group);
  p.set("x", x);
  return p;
}

}  // namespace tmps
