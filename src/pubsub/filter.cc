#include "pubsub/filter.h"

namespace tmps {

Filter::Filter(std::initializer_list<Predicate> preds) {
  for (const auto& p : preds) add(p);
}

bool Filter::add(const Predicate& p) {
  preds_.push_back(p);
  if (!constraints_[p.attr].add(p)) satisfiable_ = false;
  return satisfiable_;
}

bool Filter::matches(const Publication& pub) const {
  if (!satisfiable_) return false;
  for (const auto& [attr, c] : constraints_) {
    const Value* v = pub.find(attr);
    if (!v || !c.satisfies(*v)) return false;
  }
  return true;
}

bool Filter::covers(const Filter& other) const {
  if (!satisfiable_) return false;
  if (!other.satisfiable_) return true;  // empty set is covered by anything
  // Every attribute we constrain must be constrained (at least as tightly)
  // by `other`; an attribute missing from `other` admits publications
  // without it, which we would reject.
  for (const auto& [attr, c] : constraints_) {
    auto it = other.constraints_.find(attr);
    if (it == other.constraints_.end()) return false;
    if (!c.covers(it->second)) return false;
  }
  return true;
}

bool Filter::intersects_advertisement(const Filter& adv) const {
  if (!satisfiable_ || !adv.satisfiable_) return false;
  // Each attribute the subscription constrains must be declared by the
  // advertisement with an overlapping constraint.
  for (const auto& [attr, c] : constraints_) {
    auto it = adv.constraints_.find(attr);
    if (it == adv.constraints_.end()) return false;
    if (!c.intersects(it->second)) return false;
  }
  return true;
}

bool Filter::overlaps(const Filter& other) const {
  if (!satisfiable_ || !other.satisfiable_) return false;
  for (const auto& [attr, c] : constraints_) {
    auto it = other.constraints_.find(attr);
    if (it != other.constraints_.end() && !c.intersects(it->second)) {
      return false;
    }
  }
  return true;
}

std::string Filter::to_string() const {
  std::string s = "{";
  bool first = true;
  for (const auto& p : preds_) {
    if (!first) s += ",";
    s += p.to_string();
    first = false;
  }
  s += "}";
  if (!satisfiable_) s += "(unsat)";
  return s;
}

std::string Publication::to_string() const {
  std::string s = "pub " + tmps::to_string(id_) + " {";
  bool first = true;
  for (const auto& [k, v] : attrs_) {
    if (!first) s += ",";
    s += "[" + k + "," + v.to_string() + "]";
    first = false;
  }
  return s + "}";
}

}  // namespace tmps
