// A publication: a set of (attribute, value) pairs plus identity.
#pragma once

#include <initializer_list>
#include <map>
#include <string>
#include <utility>

#include "common/ids.h"
#include "pubsub/value.h"

namespace tmps {

class Publication {
 public:
  Publication() = default;
  Publication(PublicationId id,
              std::initializer_list<std::pair<const std::string, Value>> kv)
      : id_(id), attrs_(kv) {}

  PublicationId id() const { return id_; }
  void set_id(PublicationId id) { id_ = id; }

  void set(std::string attr, Value v) { attrs_[std::move(attr)] = std::move(v); }

  const Value* find(const std::string& attr) const {
    auto it = attrs_.find(attr);
    return it == attrs_.end() ? nullptr : &it->second;
  }

  const std::map<std::string, Value>& attrs() const { return attrs_; }

  std::string to_string() const;

  friend bool operator==(const Publication& a, const Publication& b) {
    return a.id_ == b.id_ && a.attrs_ == b.attrs_;
  }

 private:
  PublicationId id_;
  std::map<std::string, Value> attrs_;
};

}  // namespace tmps
