// A single (attribute, operator, value) predicate, the atom of the PADRES
// subscription/advertisement language.
#pragma once

#include <string>

#include "pubsub/value.h"

namespace tmps {

enum class Op {
  kEq,       // attribute == value
  kNe,       // attribute != value
  kLt,       // attribute <  value
  kLe,       // attribute <= value
  kGt,       // attribute >  value
  kGe,       // attribute >= value
  kPresent,  // attribute exists, any value ("isPresent" in PADRES)
  kPrefix,   // string attribute starts with value
};

std::string to_string(Op op);

struct Predicate {
  std::string attr;
  Op op = Op::kPresent;
  Value value;

  /// Does a concrete publication value satisfy this predicate?
  bool satisfied_by(const Value& v) const;

  std::string to_string() const;

  friend bool operator==(const Predicate&, const Predicate&) = default;
};

/// Convenience constructors mirroring the PADRES string syntax
/// ("[class,eq,'STOCK']").
inline Predicate eq(std::string attr, Value v) {
  return {std::move(attr), Op::kEq, std::move(v)};
}
inline Predicate ne(std::string attr, Value v) {
  return {std::move(attr), Op::kNe, std::move(v)};
}
inline Predicate lt(std::string attr, Value v) {
  return {std::move(attr), Op::kLt, std::move(v)};
}
inline Predicate le(std::string attr, Value v) {
  return {std::move(attr), Op::kLe, std::move(v)};
}
inline Predicate gt(std::string attr, Value v) {
  return {std::move(attr), Op::kGt, std::move(v)};
}
inline Predicate ge(std::string attr, Value v) {
  return {std::move(attr), Op::kGe, std::move(v)};
}
inline Predicate present(std::string attr) {
  return {std::move(attr), Op::kPresent, Value{}};
}
inline Predicate prefix(std::string attr, std::string p) {
  return {std::move(attr), Op::kPrefix, Value{std::move(p)}};
}

}  // namespace tmps
