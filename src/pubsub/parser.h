// Parser and formatter for the PADRES-style textual subscription language
// the paper's system uses:
//
//   subscriptions / advertisements:
//     [class,eq,'STOCK'],[price,>,100],[volume,<=,5e3],[sym,isPresent]
//   publications:
//     [class,'STOCK'],[price,120],[sym,'ACME']
//
// Operators: eq =, neq != <>, lt <, le <=, gt >, ge >=, isPresent (no
// value), str-prefix. Values: integers, reals, 'single-quoted strings'
// (with '' as the escaped quote). Whitespace between tokens is ignored.
//
// Parsing is total: errors are reported via ParseResult, never exceptions.
#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "pubsub/filter.h"
#include "pubsub/publication.h"

namespace tmps {

template <typename T>
struct ParseResult {
  std::optional<T> value;
  /// Empty on success; else a human-readable description with position.
  std::string error;

  bool ok() const { return value.has_value(); }
};

/// Parses a predicate conjunction (the body of a subscription or
/// advertisement).
ParseResult<Filter> parse_filter(std::string_view text);

/// Parses a publication's attribute/value list. The id is left empty
/// (callers stamp it via ClientStub::allocate_id or explicitly).
ParseResult<Publication> parse_publication(std::string_view text);

/// Formats a filter back to the textual syntax (round-trips through
/// parse_filter).
std::string format_filter(const Filter& f);

/// Formats a publication's attributes (id not included).
std::string format_publication(const Publication& p);

}  // namespace tmps
