// Subscription workload generators reproducing Fig. 7 of the paper.
//
// Each workload is a family of 10 subscription filters over a common content
// space (class = "STOCK", x in [0, 10000]) whose *covering relationships*
// form the structures the paper evaluates:
//
//   Covered  — subscription 1 covers all of 2..10 (root + 9 disjoint leaves)
//   Chained  — 1 covers 2 covers 3 ... covers 10 (nested intervals)
//   Tree     — branching-factor-3 tree: 1 covers {2,3,4}, 2 covers {5,6,7},
//              3 covers {8,9,10}  (the paper's x-axis value "3")
//   Distinct — pairwise-disjoint intervals, no covering
//   Random   — a uniform mix drawn from the four workloads above
//
// The paper's Fig. 9 x-axis ("number of covered subscriptions") is the
// maximum direct-covering fan-out: chained=1, tree=3, covered=9, distinct=0.
#pragma once

#include <cstdint>
#include <vector>

#include "pubsub/filter.h"
#include "pubsub/publication.h"
#include "pubsub/subscription.h"

namespace tmps {

enum class WorkloadKind { Covered, Chained, Tree, Distinct, Random };

const char* to_string(WorkloadKind k);

/// The paper's x-axis value for a workload (max direct-covering fan-out).
int covering_degree(WorkloadKind k);

/// Content space shared by all workloads.
inline constexpr std::int64_t kSpaceLo = 0;
inline constexpr std::int64_t kSpaceHi = 10000;
inline constexpr std::int64_t kMaxGroup = 1000000;

/// The i-th (1-based) subscription filter of a workload, within covering
/// family `group`. Filters of the same group carry the Fig. 7 covering
/// structure; filters of different groups never cover each other (each
/// subscriber gets a distinct subscription, as in the paper's experiments —
/// 400 clients form 40 independent covering families). `Random` is not a
/// fixed family; use workload_filters(Random, seed) instead.
Filter workload_filter(WorkloadKind k, int i, std::int64_t group = 0);

/// All 10 filters of a workload family, index 0 holding subscription 1 (the
/// root where one exists). For Random, filters are drawn uniformly from the
/// four concrete workloads using `seed`.
Filter workload_filter_at(WorkloadKind k, int i, std::int64_t group,
                          std::uint64_t seed);
std::vector<Filter> workload_filters(WorkloadKind k, std::uint64_t seed = 0,
                                     std::int64_t group = 0);

/// Index set (0-based) of filters that cover at least one other filter in
/// the workload ("covering" a.k.a. root/inner subscriptions).
std::vector<int> covering_indices(WorkloadKind k);

/// Index set (0-based) of filters covered by some other filter ("leaves").
std::vector<int> covered_indices(WorkloadKind k);

/// An advertisement filter spanning the whole content space, all groups
/// (every workload subscription intersects it).
Filter full_space_advertisement();

/// Skewed client placement: assigns each of `clients` clients a home broker
/// in 1..`brokers`, drawn from a Zipf-like distribution — broker rank r has
/// weight 1/r^skew, with broker 1 the heaviest. skew=0 is uniform; the
/// paper-scale load-balancing experiments use skew in [1, 2] so a handful
/// of brokers hold most of the population. Deterministic in `seed`.
std::vector<BrokerId> zipf_broker_placement(std::uint32_t clients,
                                            std::uint32_t brokers, double skew,
                                            std::uint64_t seed);

/// A publication at point `x` of the content space, within covering family
/// `group`.
Publication make_publication(PublicationId id, std::int64_t x,
                             std::int64_t group = 0);

}  // namespace tmps
