#include "pubsub/constraint.h"

#include <algorithm>

namespace tmps {
namespace {

/// Smallest string strictly greater than every string with prefix `p`, or
/// empty when no such string exists (p is all 0xFF). Used to turn a prefix
/// predicate into a half-open interval [p, next_prefix(p)).
std::string next_prefix(std::string p) {
  while (!p.empty()) {
    auto& c = reinterpret_cast<unsigned char&>(p.back());
    if (c != 0xFF) {
      ++c;
      return p;
    }
    p.pop_back();
  }
  return {};
}

bool value_less(const Value& a, const Value& b) {
  return a.compare(b) == std::partial_ordering::less;
}
bool value_eq(const Value& a, const Value& b) {
  return a.compare(b) == std::partial_ordering::equivalent;
}

}  // namespace

bool Constraint::domain_compatible(const Value& v) const {
  return !domain_ || domain_of(v) == *domain_;
}

bool Constraint::tighten_lo(const Value& v, bool open) {
  if (!lo_ || value_less(*lo_, v)) {
    lo_ = v;
    lo_open_ = open;
  } else if (value_eq(*lo_, v)) {
    lo_open_ = lo_open_ || open;
  }
  return interval_nonempty();
}

bool Constraint::tighten_hi(const Value& v, bool open) {
  if (!hi_ || value_less(v, *hi_)) {
    hi_ = v;
    hi_open_ = open;
  } else if (value_eq(*hi_, v)) {
    hi_open_ = hi_open_ || open;
  }
  return interval_nonempty();
}

bool Constraint::interval_nonempty() const {
  if (!lo_ || !hi_) return true;
  const auto c = lo_->compare(*hi_);
  if (c == std::partial_ordering::less) return true;
  if (c == std::partial_ordering::equivalent) return !lo_open_ && !hi_open_;
  return false;
}

std::optional<Value> Constraint::singleton() const {
  if (lo_ && hi_ && !lo_open_ && !hi_open_ && value_eq(*lo_, *hi_)) {
    return *lo_;
  }
  return std::nullopt;
}

bool Constraint::add(const Predicate& p) {
  if (p.op == Op::kPresent) return interval_nonempty();

  // Any ordered/equality/exclusion/prefix predicate pins the value domain.
  const Domain d =
      p.op == Op::kPrefix ? Domain::String : domain_of(p.value);
  if (domain_ && *domain_ != d) return false;  // x > 5 AND x == "a": empty
  domain_ = d;

  bool ok = true;
  switch (p.op) {
    case Op::kEq:
      ok = tighten_lo(p.value, /*open=*/false) &&
           tighten_hi(p.value, /*open=*/false);
      break;
    case Op::kNe:
      if (std::none_of(exclusions_.begin(), exclusions_.end(),
                       [&](const Value& e) { return value_eq(e, p.value); })) {
        exclusions_.push_back(p.value);
      }
      break;
    case Op::kLt:
      ok = tighten_hi(p.value, /*open=*/true);
      break;
    case Op::kLe:
      ok = tighten_hi(p.value, /*open=*/false);
      break;
    case Op::kGt:
      ok = tighten_lo(p.value, /*open=*/true);
      break;
    case Op::kGe:
      ok = tighten_lo(p.value, /*open=*/false);
      break;
    case Op::kPrefix: {
      if (!p.value.is_string()) return false;
      const std::string& pre = p.value.as_string();
      if (!pre.empty()) {
        ok = tighten_lo(Value{pre}, /*open=*/false);
        if (ok) {
          const std::string up = next_prefix(pre);
          if (!up.empty()) ok = tighten_hi(Value{up}, /*open=*/true);
        }
      }
      break;
    }
    case Op::kPresent:
      break;
  }
  if (!ok) return false;

  // A point interval emptied by an exclusion is unsatisfiable.
  if (const auto s = singleton()) {
    for (const auto& e : exclusions_) {
      if (value_eq(e, *s)) return false;
    }
  }
  return true;
}

bool Constraint::in_interval(const Value& v) const {
  if (lo_) {
    const auto c = v.compare(*lo_);
    if (c == std::partial_ordering::less) return false;
    if (c == std::partial_ordering::equivalent && lo_open_) return false;
    if (c == std::partial_ordering::unordered) return false;
  }
  if (hi_) {
    const auto c = v.compare(*hi_);
    if (c == std::partial_ordering::greater) return false;
    if (c == std::partial_ordering::equivalent && hi_open_) return false;
    if (c == std::partial_ordering::unordered) return false;
  }
  return true;
}

bool Constraint::satisfies(const Value& v) const {
  if (!domain_compatible(v)) return false;
  if (!in_interval(v)) return false;
  return std::none_of(exclusions_.begin(), exclusions_.end(),
                      [&](const Value& e) { return value_eq(e, v); });
}

bool Constraint::covers(const Constraint& other) const {
  if (unconstrained()) return true;
  // *this is constrained, so its domain is pinned. If `other` admits values
  // of any domain (or of a different domain), it admits values we reject.
  if (!other.domain_ || *other.domain_ != *domain_) return false;

  // Interval containment: our lower bound must be no tighter than theirs.
  if (lo_) {
    if (!other.lo_) return false;
    const auto c = lo_->compare(*other.lo_);
    if (c == std::partial_ordering::greater) return false;
    if (c == std::partial_ordering::equivalent && lo_open_ &&
        !other.lo_open_) {
      return false;
    }
  }
  if (hi_) {
    if (!other.hi_) return false;
    const auto c = hi_->compare(*other.hi_);
    if (c == std::partial_ordering::less) return false;
    if (c == std::partial_ordering::equivalent && hi_open_ &&
        !other.hi_open_) {
      return false;
    }
  }
  // Every value we exclude must already be rejected by `other`.
  return std::none_of(exclusions_.begin(), exclusions_.end(),
                      [&](const Value& e) { return other.satisfies(e); });
}

bool Constraint::intersects(const Constraint& other) const {
  if (unconstrained() || other.unconstrained()) return true;
  if (domain_ && other.domain_ && *domain_ != *other.domain_) return false;

  // Overlap interval: [max(lo), min(hi)] with open flags merged.
  const Constraint* lo_src = nullptr;  // whose lo is the overlap lo
  bool lo_open = false;
  std::optional<Value> lo;
  if (lo_ && other.lo_) {
    const auto c = lo_->compare(*other.lo_);
    if (c == std::partial_ordering::greater) {
      lo = lo_;
      lo_open = lo_open_;
    } else if (c == std::partial_ordering::less) {
      lo = other.lo_;
      lo_open = other.lo_open_;
    } else {
      lo = lo_;
      lo_open = lo_open_ || other.lo_open_;
    }
  } else if (lo_) {
    lo = lo_;
    lo_open = lo_open_;
  } else if (other.lo_) {
    lo = other.lo_;
    lo_open = other.lo_open_;
  }
  (void)lo_src;

  bool hi_open = false;
  std::optional<Value> hi;
  if (hi_ && other.hi_) {
    const auto c = hi_->compare(*other.hi_);
    if (c == std::partial_ordering::less) {
      hi = hi_;
      hi_open = hi_open_;
    } else if (c == std::partial_ordering::greater) {
      hi = other.hi_;
      hi_open = other.hi_open_;
    } else {
      hi = hi_;
      hi_open = hi_open_ || other.hi_open_;
    }
  } else if (hi_) {
    hi = hi_;
    hi_open = hi_open_;
  } else if (other.hi_) {
    hi = other.hi_;
    hi_open = other.hi_open_;
  }

  if (lo && hi) {
    const auto c = lo->compare(*hi);
    if (c == std::partial_ordering::greater) return false;
    if (c == std::partial_ordering::equivalent) {
      if (lo_open || hi_open) return false;
      // Point overlap: check it survives both exclusion sets.
      return satisfies(*lo) && other.satisfies(*lo);
    }
  }
  // Wider-than-point overlap: finite exclusions cannot empty it in the real/
  // string domains we model (conservative for pure-integer use).
  return true;
}

std::string Constraint::to_string() const {
  if (unconstrained()) return "(any)";
  std::string s;
  s += lo_ ? (lo_open_ ? "(" : "[") + lo_->to_string() : std::string("(-inf");
  s += ", ";
  s += hi_ ? hi_->to_string() + (hi_open_ ? ")" : "]") : std::string("+inf)");
  for (const auto& e : exclusions_) s += " \\ " + e.to_string();
  return s;
}

}  // namespace tmps
