#include "pubsub/parser.h"

#include <cctype>
#include <charconv>

namespace tmps {
namespace {

/// Minimal recursive-descent lexer/cursor over the bracketed tuple syntax.
class Cursor {
 public:
  explicit Cursor(std::string_view text) : text_(text) {}

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool at_end() {
    skip_ws();
    return pos_ >= text_.size();
  }

  bool eat(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  char peek() {
    skip_ws();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  std::size_t pos() const { return pos_; }

  std::string err(const std::string& what) const {
    return what + " at position " + std::to_string(pos_);
  }

  /// A bare token: attribute name or operator symbol — letters, digits,
  /// '_', '-', and comparison characters.
  std::string token() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == '-' || c == '<' || c == '>' || c == '=' || c == '!' ||
          c == '.' || c == '+') {
        ++pos_;
      } else {
        break;
      }
    }
    return std::string(text_.substr(start, pos_ - start));
  }

  /// 'single-quoted string' with '' as escaped quote. Call with the opening
  /// quote already peeked.
  bool quoted_string(std::string& out, std::string& error) {
    if (!eat('\'')) {
      error = err("expected opening quote");
      return false;
    }
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '\'') {
        if (pos_ < text_.size() && text_[pos_] == '\'') {
          out.push_back('\'');
          ++pos_;
          continue;
        }
        return true;
      }
      out.push_back(c);
    }
    error = err("unterminated string");
    return false;
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;
};

std::optional<Op> parse_op(const std::string& tok) {
  if (tok == "eq" || tok == "=") return Op::kEq;
  if (tok == "neq" || tok == "ne" || tok == "!=" || tok == "<>") return Op::kNe;
  if (tok == "lt" || tok == "<") return Op::kLt;
  if (tok == "le" || tok == "<=") return Op::kLe;
  if (tok == "gt" || tok == ">") return Op::kGt;
  if (tok == "ge" || tok == ">=") return Op::kGe;
  if (tok == "isPresent" || tok == "ispresent" || tok == "present") {
    return Op::kPresent;
  }
  if (tok == "str-prefix" || tok == "prefix") return Op::kPrefix;
  return std::nullopt;
}

/// Numeric token -> Value (int64 when it looks integral, else double).
bool parse_number(const std::string& tok, Value& out) {
  if (tok.empty()) return false;
  const bool has_dot = tok.find('.') != std::string::npos ||
                       tok.find('e') != std::string::npos ||
                       tok.find('E') != std::string::npos;
  if (!has_dot) {
    std::int64_t v = 0;
    const auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), v);
    if (ec == std::errc{} && p == tok.data() + tok.size()) {
      out = Value{v};
      return true;
    }
  }
  try {
    std::size_t used = 0;
    const double d = std::stod(tok, &used);
    if (used != tok.size()) return false;
    out = Value{d};
    return true;
  } catch (...) {
    return false;
  }
}

bool parse_value(Cursor& cur, Value& out, std::string& error) {
  if (cur.peek() == '\'') {
    std::string s;
    if (!cur.quoted_string(s, error)) return false;
    out = Value{std::move(s)};
    return true;
  }
  const std::string tok = cur.token();
  if (tok.empty()) {
    error = cur.err("expected a value");
    return false;
  }
  if (!parse_number(tok, out)) {
    error = cur.err("malformed number '" + tok + "'");
    return false;
  }
  return true;
}

std::string escape(const std::string& s) {
  std::string out = "'";
  for (const char c : s) {
    out.push_back(c);
    if (c == '\'') out.push_back('\'');
  }
  out.push_back('\'');
  return out;
}

std::string format_value(const Value& v) {
  switch (v.kind()) {
    case Value::Kind::Int: return std::to_string(v.as_int());
    case Value::Kind::Real: {
      std::string s = std::to_string(v.as_real());
      return s;
    }
    case Value::Kind::String: return escape(v.as_string());
  }
  return {};
}

}  // namespace

ParseResult<Filter> parse_filter(std::string_view text) {
  Cursor cur(text);
  Filter f;
  bool first = true;
  while (!cur.at_end()) {
    if (!first && !cur.eat(',')) {
      return {std::nullopt, cur.err("expected ',' between predicates")};
    }
    first = false;
    if (!cur.eat('[')) return {std::nullopt, cur.err("expected '['")};
    const std::string attr = cur.token();
    if (attr.empty()) {
      return {std::nullopt, cur.err("expected an attribute name")};
    }
    if (!cur.eat(',')) {
      return {std::nullopt, cur.err("expected ',' after attribute")};
    }
    const std::string op_tok = cur.token();
    const auto op = parse_op(op_tok);
    if (!op) {
      return {std::nullopt, cur.err("unknown operator '" + op_tok + "'")};
    }
    Predicate p;
    p.attr = attr;
    p.op = *op;
    if (*op != Op::kPresent) {
      if (!cur.eat(',')) {
        return {std::nullopt, cur.err("expected ',' before value")};
      }
      std::string error;
      if (!parse_value(cur, p.value, error)) return {std::nullopt, error};
    }
    if (!cur.eat(']')) return {std::nullopt, cur.err("expected ']'")};
    if (!f.add(p)) {
      return {std::nullopt,
              "unsatisfiable conjunction after adding " + p.to_string()};
    }
  }
  if (f.empty()) return {std::nullopt, "empty filter"};
  return {std::move(f), {}};
}

ParseResult<Publication> parse_publication(std::string_view text) {
  Cursor cur(text);
  Publication pub;
  bool first = true;
  while (!cur.at_end()) {
    if (!first && !cur.eat(',')) {
      return {std::nullopt, cur.err("expected ',' between attributes")};
    }
    first = false;
    if (!cur.eat('[')) return {std::nullopt, cur.err("expected '['")};
    const std::string attr = cur.token();
    if (attr.empty()) {
      return {std::nullopt, cur.err("expected an attribute name")};
    }
    if (!cur.eat(',')) {
      return {std::nullopt, cur.err("expected ',' after attribute")};
    }
    Value v;
    std::string error;
    if (!parse_value(cur, v, error)) return {std::nullopt, error};
    if (!cur.eat(']')) return {std::nullopt, cur.err("expected ']'")};
    pub.set(attr, std::move(v));
  }
  if (pub.attrs().empty()) return {std::nullopt, "empty publication"};
  return {std::move(pub), {}};
}

std::string format_filter(const Filter& f) {
  std::string out;
  bool first = true;
  for (const auto& p : f.predicates()) {
    if (!first) out += ",";
    first = false;
    out += "[" + p.attr + "," + to_string(p.op);
    if (p.op != Op::kPresent) out += "," + format_value(p.value);
    out += "]";
  }
  return out;
}

std::string format_publication(const Publication& p) {
  std::string out;
  bool first = true;
  for (const auto& [attr, v] : p.attrs()) {
    if (!first) out += ",";
    first = false;
    out += "[" + attr + "," + format_value(v) + "]";
  }
  return out;
}

}  // namespace tmps
