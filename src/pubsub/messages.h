// The inter-broker wire-message vocabulary.
//
// Two message classes flow over overlay links:
//   * pub/sub routing messages — (un)advertise, (un)subscribe, publish —
//     routed content-based by each broker's tables;
//   * movement-protocol messages (Fig. 3 of the paper) — negotiate, approve,
//     reject, state, ack, plus the hop-by-hop reconfiguration commit/abort.
//     Unicast messages travel along the unique overlay path to `unicast_dest`;
//     `approve`, `commit` and `abort` are additionally *processed* at every
//     broker on the path (they carry the routing reconfiguration).
//
// Client↔broker interaction is local (clients live in the broker's mobile
// container, per the paper's system model) and does not appear here.
#pragma once

#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "common/ids.h"
#include "obs/provenance.h"
#include "pubsub/publication.h"
#include "pubsub/subscription.h"

namespace tmps {

// ---------------------------------------------------------------------------
// Routing-layer payloads
// ---------------------------------------------------------------------------

struct AdvertiseMsg {
  Advertisement adv;
};

struct UnadvertiseMsg {
  AdvertisementId adv_id;
};

struct SubscribeMsg {
  Subscription sub;
};

struct UnsubscribeMsg {
  SubscriptionId sub_id;
};

struct PublishMsg {
  Publication pub;
};

// ---------------------------------------------------------------------------
// Movement-protocol payloads (Fig. 3: (1) negotiate, (2) approve, (3) reject,
// (4) state, (5) ack), plus the hop-by-hop transaction resolution.
// ---------------------------------------------------------------------------

/// (1) Source coordinator -> target coordinator: data about the moving
/// client. Pure unicast (intermediate brokers only forward).
struct MoveNegotiateMsg {
  TxnId txn = kNoTxn;
  ClientId client = kNoClient;
  BrokerId source = kNoBroker;
  BrokerId target = kNoBroker;
  std::vector<Subscription> subs;
  std::vector<Advertisement> advs;
  /// Next per-client entity sequence number (id allocation moves with the
  /// client).
  std::uint32_t next_seq = 1;
};

/// (2) Target coordinator -> source coordinator. Processed hop-by-hop along
/// RouteS2T: each broker on the path installs the *shadow* (post-move)
/// routing configuration for the client's subs/advs (Sec. 4.4).
struct MoveApproveMsg {
  TxnId txn = kNoTxn;
  ClientId client = kNoClient;
  BrokerId source = kNoBroker;
  BrokerId target = kNoBroker;
  std::vector<Subscription> subs;
  std::vector<Advertisement> advs;
};

/// (3) Target coordinator -> source coordinator: movement refused; the
/// client resumes at the source. Pure unicast.
struct MoveRejectMsg {
  TxnId txn = kNoTxn;
  ClientId client = kNoClient;
  std::string reason;
};

/// (4) Source coordinator -> target coordinator: client state hand-off,
/// including publications queued for the client while it was paused.
/// Processed hop-by-hop: commits the reconfiguration (deletes the pre-move
/// routing configuration) at each broker on the path.
struct MoveStateMsg {
  TxnId txn = kNoTxn;
  ClientId client = kNoClient;
  BrokerId source = kNoBroker;
  BrokerId target = kNoBroker;
  std::vector<Publication> queued_notifications;
  /// Publish commands the application issued while the client was moving;
  /// replayed at the target once the client starts.
  std::vector<Publication> queued_commands;
  /// Entities whose shadow configuration each path broker must commit.
  std::vector<SubscriptionId> sub_ids;
  std::vector<AdvertisementId> adv_ids;
};

/// (5) Target coordinator -> source coordinator: hand-off complete; the
/// source cleans up all client state. Pure unicast.
struct MoveAckMsg {
  TxnId txn = kNoTxn;
  ClientId client = kNoClient;
};

/// Transaction abort after the shadow configuration was installed. Processed
/// hop-by-hop: deletes the shadow (post-move) configuration at each broker.
struct MoveAbortMsg {
  TxnId txn = kNoTxn;
  ClientId client = kNoClient;
  BrokerId source = kNoBroker;
  BrokerId target = kNoBroker;
  /// Entities whose shadow configuration each path broker must drop.
  std::vector<SubscriptionId> sub_ids;
  std::vector<AdvertisementId> adv_ids;
};

/// State hand-off used by the *traditional* covering-based protocol: the
/// source broker ships the buffered notifications to the target after the
/// client reconnects there. Pure unicast.
struct BufferedStateMsg {
  TxnId txn = kNoTxn;
  ClientId client = kNoClient;
  std::vector<Publication> queued_notifications;
  std::vector<Publication> queued_commands;
};

// ---------------------------------------------------------------------------
// Traditional (covering-based, end-to-end) mobility protocol payloads.
// ---------------------------------------------------------------------------

/// Source broker -> target broker: the moving client's profile. The target
/// re-issues the subscriptions/advertisements (with fresh incarnations) as
/// ordinary pub/sub operations, so covering dynamics fire. Pure unicast.
struct TradMoveRequestMsg {
  TxnId txn = kNoTxn;
  ClientId client = kNoClient;
  BrokerId source = kNoBroker;
  BrokerId target = kNoBroker;
  std::vector<Subscription> subs;
  std::vector<Advertisement> advs;
  std::uint32_t next_seq = 1;
};

/// Target -> source: the re-issued subscriptions have been injected; the
/// source may now unsubscribe/unadvertise the old ones and ship the buffered
/// notifications. Pure unicast.
struct TradReadyMsg {
  TxnId txn = kNoTxn;
  ClientId client = kNoClient;
};

/// Target -> source: movement refused; client resumes at the source.
struct TradRejectMsg {
  TxnId txn = kNoTxn;
  ClientId client = kNoClient;
  std::string reason;
};

// ---------------------------------------------------------------------------
// Anti-entropy repair payloads (src/repair): the self-healing loop that
// reconciles routing state drifted by crash-interrupted movements. Digests
// and requests are link-local (sent one hop to a neighbour); probes and
// verdicts are pure unicasts between a broker holding suspicious state and
// the transaction's coordinator (recoverable from the TxnId encoding).
// ---------------------------------------------------------------------------

/// How a transaction's coordinator resolved it, as answered to a repair
/// probe. InFlight means "leave the state alone and ask again later".
enum class RepairVerdict : std::uint8_t {
  InFlight = 0,
  Committed = 1,
  Aborted = 2,
};

const char* to_string(RepairVerdict v);

/// Periodic neighbour digest: `origin` lists every subscription/
/// advertisement it believes it has forwarded to the receiving neighbour.
/// The receiver diffs the claim against its own lasthop state — entries it
/// holds but the sender no longer claims are orphans to retract; claimed
/// entries it lacks are missing forwards to request back.
///
/// `in_flight_*` list entries the origin holds only as uncommitted shadow
/// state of a movement transaction. They are not claims (the receiver must
/// not request a re-forward — the movement will install them on commit), but
/// they veto orphan aging: a neighbour whose committed entry already points
/// at the origin mid-movement must not retract it while the origin's own
/// copy is still a shadow.
struct RepairDigestMsg {
  std::uint64_t round = 0;
  BrokerId origin = kNoBroker;
  std::vector<SubscriptionId> sub_ids;
  std::vector<AdvertisementId> adv_ids;
  std::vector<SubscriptionId> in_flight_subs;
  std::vector<AdvertisementId> in_flight_advs;
};

/// Receiver -> digest sender: re-forward these entries (the sender answers
/// with ordinary SubscribeMsg/AdvertiseMsg re-sends, which are idempotent
/// upserts at the receiver).
struct RepairRequestMsg {
  std::uint64_t round = 0;
  BrokerId origin = kNoBroker;
  std::vector<SubscriptionId> sub_ids;
  std::vector<AdvertisementId> adv_ids;
};

/// A broker holding stale shadow or parked state for `txn` asks the
/// transaction's coordinator how it resolved. Pure unicast.
struct RepairProbeMsg {
  TxnId txn = kNoTxn;
  BrokerId asker = kNoBroker;
};

/// The coordinator's answer to a probe. `source`/`target`/`client` carry the
/// movement's endpoints so the asker can commit shadows locally (the commit
/// hand-off needs the direction of the source). Pure unicast.
struct RepairVerdictMsg {
  TxnId txn = kNoTxn;
  RepairVerdict verdict = RepairVerdict::InFlight;
  BrokerId source = kNoBroker;
  BrokerId target = kNoBroker;
  ClientId client = kNoClient;
};

// ---------------------------------------------------------------------------
// Edge-session payloads (src/session): durable client sessions with
// resumption tokens, disconnected-operation buffering and connectivity-
// triggered mobility. Over the overlay these are pure unicasts between the
// broker a client reappears at and the session's home broker (recoverable
// from the token encoding); over `tcp_transport` the same frames double as
// the client↔broker handshake vocabulary.
// ---------------------------------------------------------------------------

/// A session's home broker answers a resume request with one of these.
enum class SessionVerdict : std::uint8_t {
  Resumed = 0,     ///< session live; stub resumed at the home broker
  Moving = 1,      ///< home initiated a movement transaction toward `at`
  Forwarding = 2,  ///< movement refused; home resumes and forwards deliveries
  Expired = 3,     ///< grace elapsed; last-will fired; reattach cold
  Unknown = 4,     ///< no such session at the home broker
};

const char* to_string(SessionVerdict v);

/// Client -> hosting broker: open a durable session, optionally registering
/// a last-will publication fired if the session expires ungracefully.
struct SessionOpenMsg {
  ClientId client = kNoClient;
  BrokerId at = kNoBroker;  ///< broker hosting the client
  bool has_will = false;
  Publication will;  ///< valid iff has_will
};

/// Reappeared client (relayed by the broker it reached) -> home broker:
/// resume session `token`; `at` is where the client is now. Pure unicast.
struct SessionResumeMsg {
  std::uint64_t token = 0;
  ClientId client = kNoClient;
  BrokerId at = kNoBroker;
};

/// Home broker's answer to open/resume. `txn` carries the movement
/// transaction id when `verdict == Moving`, and the registered last-will
/// travels along so the session can re-home with the client. Pure unicast.
struct SessionAckMsg {
  std::uint64_t token = 0;
  ClientId client = kNoClient;
  SessionVerdict verdict = SessionVerdict::Unknown;
  TxnId txn = kNoTxn;
  BrokerId home = kNoBroker;
  bool has_will = false;
  Publication will;  ///< valid iff has_will
};

/// Client -> hosting broker: liveness beacon refreshing the session timer.
struct SessionHeartbeatMsg {
  std::uint64_t token = 0;
  ClientId client = kNoClient;
};

/// Client -> hosting broker: graceful close. `fire_will` requests the
/// last-will publication anyway (MQTT DISCONNECT-with-will semantics).
struct SessionCloseMsg {
  std::uint64_t token = 0;
  ClientId client = kNoClient;
  bool fire_will = false;
};

/// Old host -> broker the client reattached to: deliveries forwarded while
/// the routing state stays behind (movement refusal fallback). Pure unicast.
struct SessionForwardMsg {
  std::uint64_t token = 0;
  ClientId client = kNoClient;
  BrokerId origin = kNoBroker;
  std::vector<Publication> pubs;
};

using Payload =
    std::variant<AdvertiseMsg, UnadvertiseMsg, SubscribeMsg, UnsubscribeMsg,
                 PublishMsg, MoveNegotiateMsg, MoveApproveMsg, MoveRejectMsg,
                 MoveStateMsg, MoveAckMsg, MoveAbortMsg, BufferedStateMsg,
                 TradMoveRequestMsg, TradReadyMsg, TradRejectMsg,
                 RepairDigestMsg, RepairRequestMsg, RepairProbeMsg,
                 RepairVerdictMsg, SessionOpenMsg, SessionResumeMsg,
                 SessionAckMsg, SessionHeartbeatMsg, SessionCloseMsg,
                 SessionForwardMsg>;

struct Message {
  MessageId id = 0;
  /// Movement transaction this message is (transitively) caused by; lets the
  /// metrics layer attribute routing traffic — including covering-induced
  /// (un)subscriptions — to individual movements. kNoTxn for background
  /// traffic.
  TxnId cause = kNoTxn;
  /// Set for unicast (movement-protocol) messages; routing messages leave it
  /// empty and are routed content-based.
  std::optional<BrokerId> unicast_dest;
  /// Publication provenance (PublishMsg only, when the sending broker has
  /// provenance enabled): origin timestamp + hop count + deterministic
  /// sample bit, updated at every forwarding hop (obs/provenance.h).
  std::optional<obs::ProvenanceTag> prov;
  Payload payload;

  /// Name of the payload alternative, for tracing and metrics.
  std::string_view type_name() const;
  /// True for movement-protocol (control) payloads.
  bool is_control() const;
};

std::string to_string(const Message& m);

}  // namespace tmps
