#include "pubsub/value.h"

#include <cmath>

namespace tmps {

std::partial_ordering Value::compare(const Value& other) const {
  if (is_numeric() && other.is_numeric()) {
    if (kind() == Kind::Int && other.kind() == Kind::Int) {
      const auto a = as_int();
      const auto b = other.as_int();
      if (a < b) return std::partial_ordering::less;
      if (a > b) return std::partial_ordering::greater;
      return std::partial_ordering::equivalent;
    }
    const double a = numeric();
    const double b = other.numeric();
    if (a < b) return std::partial_ordering::less;
    if (a > b) return std::partial_ordering::greater;
    return std::partial_ordering::equivalent;
  }
  if (is_string() && other.is_string()) {
    const int c = as_string().compare(other.as_string());
    if (c < 0) return std::partial_ordering::less;
    if (c > 0) return std::partial_ordering::greater;
    return std::partial_ordering::equivalent;
  }
  // Cross-domain: numerics before strings, deterministically.
  return is_numeric() ? std::partial_ordering::less
                      : std::partial_ordering::greater;
}

bool Value::equals(const Value& other) const {
  if (!comparable_with(other)) return false;
  return compare(other) == std::partial_ordering::equivalent;
}

std::string Value::to_string() const {
  switch (kind()) {
    case Kind::Int: return std::to_string(as_int());
    case Kind::Real: {
      std::string s = std::to_string(as_real());
      return s;
    }
    case Kind::String: return "\"" + as_string() + "\"";
  }
  return {};
}

}  // namespace tmps
