// Binary wire codec for every message the brokers exchange.
//
// The discrete-event simulator and the in-process transport pass C++
// objects around, but durable queues (Sec. 3.5's fault masking) and real
// network transports need bytes. The format is a simple little-endian
// tag-length encoding; decoding is total — malformed input yields
// std::nullopt, never undefined behaviour.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "pubsub/messages.h"

namespace tmps {

/// Append-only byte sink.
class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);
  void str(std::string_view s);

  const std::string& bytes() const { return buf_; }
  std::string take() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Bounds-checked byte source. Every read reports success; once a read
/// fails, all subsequent reads fail (sticky error).
class Reader {
 public:
  explicit Reader(std::string_view bytes) : data_(bytes) {}

  bool u8(std::uint8_t& v);
  bool u32(std::uint32_t& v);
  bool u64(std::uint64_t& v);
  bool i64(std::int64_t& v);
  bool f64(double& v);
  bool str(std::string& s);

  bool ok() const { return ok_; }
  bool at_end() const { return ok_ && pos_ == data_.size(); }

 private:
  bool take(void* out, std::size_t n);

  std::string_view data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// --- building blocks ---------------------------------------------------------

void encode(Writer& w, const Value& v);
bool decode(Reader& r, Value& v);

void encode(Writer& w, const Predicate& p);
bool decode(Reader& r, Predicate& p);

void encode(Writer& w, const Filter& f);
bool decode(Reader& r, Filter& f);

void encode(Writer& w, const EntityId& id);
bool decode(Reader& r, EntityId& id);

void encode(Writer& w, const Publication& p);
bool decode(Reader& r, Publication& p);

void encode(Writer& w, const Subscription& s);
bool decode(Reader& r, Subscription& s);

void encode(Writer& w, const Advertisement& a);
bool decode(Reader& r, Advertisement& a);

// --- whole messages -----------------------------------------------------------

/// Serializes a message (envelope + payload) to bytes.
std::string encode_message(const Message& m);

/// Parses bytes back into a message. Returns nullopt on malformed or
/// truncated input, including trailing garbage.
std::optional<Message> decode_message(std::string_view bytes);

}  // namespace tmps
