// Attribute values of the PADRES content-based language model.
//
// Publications carry (attribute, value) pairs; subscription and advertisement
// predicates compare attribute values against constants. Values are typed
// (integer, real, string); integers and reals compare numerically with each
// other, strings compare lexicographically, and values of incomparable kinds
// never satisfy an ordered predicate.
#pragma once

#include <compare>
#include <cstdint>
#include <string>
#include <variant>

namespace tmps {

class Value {
 public:
  enum class Kind { Int, Real, String };

  Value() : rep_(std::int64_t{0}) {}
  Value(std::int64_t v) : rep_(v) {}          // NOLINT(google-explicit-constructor)
  Value(int v) : rep_(std::int64_t{v}) {}     // NOLINT(google-explicit-constructor)
  Value(double v) : rep_(v) {}                // NOLINT(google-explicit-constructor)
  Value(std::string v) : rep_(std::move(v)) {}  // NOLINT(google-explicit-constructor)
  Value(const char* v) : rep_(std::string(v)) {}  // NOLINT(google-explicit-constructor)

  Kind kind() const {
    switch (rep_.index()) {
      case 0: return Kind::Int;
      case 1: return Kind::Real;
      default: return Kind::String;
    }
  }

  bool is_numeric() const { return kind() != Kind::String; }
  bool is_string() const { return kind() == Kind::String; }

  std::int64_t as_int() const { return std::get<std::int64_t>(rep_); }
  double as_real() const { return std::get<double>(rep_); }
  const std::string& as_string() const { return std::get<std::string>(rep_); }

  /// Numeric view: integers widen to double. Precondition: is_numeric().
  double numeric() const {
    return kind() == Kind::Int ? static_cast<double>(as_int()) : as_real();
  }

  /// True when the two values live in the same comparable domain
  /// (numeric-with-numeric or string-with-string).
  bool comparable_with(const Value& other) const {
    return is_numeric() == other.is_numeric();
  }

  /// Total order within a domain; across domains, numerics sort before
  /// strings (an arbitrary but consistent tie-break used by containers).
  std::partial_ordering compare(const Value& other) const;

  bool equals(const Value& other) const;

  std::string to_string() const;

  friend bool operator==(const Value& a, const Value& b) { return a.equals(b); }
  friend bool operator<(const Value& a, const Value& b) {
    return a.compare(b) == std::partial_ordering::less;
  }

 private:
  std::variant<std::int64_t, double, std::string> rep_;
};

}  // namespace tmps
