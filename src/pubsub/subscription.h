// Subscriptions and advertisements: a filter plus stable identity.
#pragma once

#include <string>

#include "common/ids.h"
#include "pubsub/filter.h"

namespace tmps {

struct Subscription {
  SubscriptionId id;
  Filter filter;

  std::string to_string() const {
    return "sub " + tmps::to_string(id) + " " + filter.to_string();
  }
  friend bool operator==(const Subscription&, const Subscription&) = default;
};

struct Advertisement {
  AdvertisementId id;
  Filter filter;

  std::string to_string() const {
    return "adv " + tmps::to_string(id) + " " + filter.to_string();
  }
  friend bool operator==(const Advertisement&, const Advertisement&) = default;
};

}  // namespace tmps
