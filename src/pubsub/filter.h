// A filter is a conjunction of predicates — the body of both subscriptions
// and advertisements in the PADRES language model.
//
// Semantics (standard advertisement-based content routing):
//   * A publication matches a subscription filter when every attribute the
//     filter constrains is present in the publication with a satisfying
//     value.
//   * An advertisement declares the attribute space of future publications:
//     a publication conforms to an advertisement the same way.
//   * Subscription S intersects advertisement A when a publication could
//     match both: every attribute of S must appear in A with overlapping
//     constraints.
//   * Filter F1 covers F2 when every publication matching F2 matches F1.
#pragma once

#include <initializer_list>
#include <map>
#include <string>
#include <vector>

#include "pubsub/constraint.h"
#include "pubsub/predicate.h"
#include "pubsub/publication.h"

namespace tmps {

class Filter {
 public:
  class Builder;

  Filter() = default;
  Filter(std::initializer_list<Predicate> preds);

  /// Fluent construction:
  ///   Filter f = Filter::build().attr("class").eq("STOCK")
  ///                             .attr("price").ge(10).lt(100);
  /// The builder keeps a current attribute; each comparison conjoins one
  /// predicate on it. Converts implicitly to Filter.
  static Builder build();

  /// Conjoins another predicate. Returns false (and marks the filter
  /// unsatisfiable) if the conjunction admits no publication.
  bool add(const Predicate& p);

  bool satisfiable() const { return satisfiable_; }
  bool empty() const { return constraints_.empty(); }
  std::size_t attribute_count() const { return constraints_.size(); }

  bool matches(const Publication& pub) const;

  /// Every publication matching `other` also matches *this.
  bool covers(const Filter& other) const;

  /// Some publication could match both *this (as subscription) and `other`
  /// (as advertisement): attrs(*this) ⊆ attrs(other) with overlapping
  /// constraints. Asymmetric, per advertisement-based routing.
  bool intersects_advertisement(const Filter& adv) const;

  /// Symmetric overlap: constraints on common attributes overlap and each
  /// side's attributes could appear together in one publication.
  bool overlaps(const Filter& other) const;

  const std::map<std::string, Constraint>& constraints() const {
    return constraints_;
  }

  /// The original predicate conjunction (serialization re-encodes filters
  /// from this list and rebuilds the normalized constraints on decode).
  const std::vector<Predicate>& predicates() const { return preds_; }

  std::string to_string() const;

  friend bool operator==(const Filter& a, const Filter& b) {
    // Structural equality on the original predicate list.
    return a.preds_ == b.preds_;
  }

 private:
  std::vector<Predicate> preds_;
  std::map<std::string, Constraint> constraints_;
  bool satisfiable_ = true;
};

class Filter::Builder {
 public:
  /// Selects the attribute the following comparisons constrain. Stays
  /// current until the next attr() call, so chained ops conjoin:
  /// attr("x").ge(0).le(9) constrains x to [0, 9].
  Builder& attr(std::string name) {
    attr_ = std::move(name);
    return *this;
  }

  Builder& eq(Value v) { return add(Op::kEq, std::move(v)); }
  Builder& ne(Value v) { return add(Op::kNe, std::move(v)); }
  Builder& lt(Value v) { return add(Op::kLt, std::move(v)); }
  Builder& le(Value v) { return add(Op::kLe, std::move(v)); }
  Builder& gt(Value v) { return add(Op::kGt, std::move(v)); }
  Builder& ge(Value v) { return add(Op::kGe, std::move(v)); }
  Builder& present() { return add(Op::kPresent, Value{}); }
  Builder& prefix(std::string p) {
    return add(Op::kPrefix, Value{std::move(p)});
  }

  Filter done() const { return filter_; }
  operator Filter() const { return filter_; }  // NOLINT(google-explicit-constructor)

 private:
  Builder& add(Op op, Value v) {
    filter_.add(Predicate{attr_, op, std::move(v)});
    return *this;
  }
  std::string attr_;
  Filter filter_;
};

inline Filter::Builder Filter::build() { return {}; }

}  // namespace tmps
