// Normalized per-attribute constraint: the conjunction of all predicates a
// filter places on one attribute, reduced to an interval over a single value
// domain plus a finite exclusion set.
//
// This normal form makes the three relations the routing layer needs —
// satisfaction, coverage and intersection — cheap and mostly exact:
//   * satisfies(v)   : exact
//   * covers(other)  : exact for interval+exclusion constraints
//   * intersects     : exact for intervals; conservative (may report a
//                      non-empty intersection that exclusions actually empty
//                      out) when the overlap region is wider than a point.
// Conservative intersection only causes benign extra forwarding, never lost
// notifications.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "pubsub/predicate.h"

namespace tmps {

class Constraint {
 public:
  /// Unconstrained ("isPresent"): any value of any domain.
  Constraint() = default;

  /// Tightens this constraint with one more predicate (conjunction).
  /// Returns false if the result is unsatisfiable (e.g. x>5 AND x<3, or
  /// predicates over incompatible domains).
  bool add(const Predicate& p);

  bool satisfies(const Value& v) const;

  /// Every value satisfying `other` also satisfies *this.
  bool covers(const Constraint& other) const;

  /// There may exist a value satisfying both (conservative, see above).
  bool intersects(const Constraint& other) const;

  bool unconstrained() const {
    return !lo_ && !hi_ && exclusions_.empty() && !domain_;
  }

  // --- canonical interval view ---------------------------------------------
  // The normal form *is* an interval (plus exclusions); these accessors
  // expose it so index structures (routing/covering_index.h) can file and
  // range-probe constraints without re-deriving bounds from predicate lists.

  /// Interval endpoints; empty optional = unbounded on that side. Exclusions
  /// are not reflected (callers needing exactness verify with covers()).
  const std::optional<Value>& lower_bound() const { return lo_; }
  const std::optional<Value>& upper_bound() const { return hi_; }
  bool lower_open() const { return lo_open_; }
  bool upper_open() const { return hi_open_; }

  /// The single value this constraint pins (x == v), when the interval is a
  /// closed point; nullopt otherwise.
  std::optional<Value> singleton_value() const { return singleton(); }

  std::string to_string() const;

 private:
  enum class Domain { Numeric, String };

  // Domain the interval endpoints live in; empty means "not yet pinned"
  // (only isPresent predicates so far).
  std::optional<Domain> domain_;

  // Closed/open interval bounds; empty optional = unbounded on that side.
  std::optional<Value> lo_, hi_;
  bool lo_open_ = false;
  bool hi_open_ = false;

  // Values excluded by != predicates.
  std::vector<Value> exclusions_;

  bool domain_compatible(const Value& v) const;
  bool in_interval(const Value& v) const;
  static Domain domain_of(const Value& v) {
    return v.is_numeric() ? Domain::Numeric : Domain::String;
  }
  bool tighten_lo(const Value& v, bool open);
  bool tighten_hi(const Value& v, bool open);
  bool interval_nonempty() const;
  /// The interval admits exactly one value (and returns it).
  std::optional<Value> singleton() const;

  friend class ConstraintTestPeer;
};

}  // namespace tmps
