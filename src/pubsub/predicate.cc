#include "pubsub/predicate.h"

namespace tmps {

std::string to_string(Op op) {
  switch (op) {
    case Op::kEq: return "eq";
    case Op::kNe: return "ne";
    case Op::kLt: return "lt";
    case Op::kLe: return "le";
    case Op::kGt: return "gt";
    case Op::kGe: return "ge";
    case Op::kPresent: return "isPresent";
    case Op::kPrefix: return "str-prefix";
  }
  return "?";
}

bool Predicate::satisfied_by(const Value& v) const {
  switch (op) {
    case Op::kPresent:
      return true;
    case Op::kEq:
      return v.equals(value);
    case Op::kNe:
      return v.comparable_with(value) && !v.equals(value);
    case Op::kLt:
      return v.comparable_with(value) &&
             v.compare(value) == std::partial_ordering::less;
    case Op::kLe: {
      if (!v.comparable_with(value)) return false;
      const auto c = v.compare(value);
      return c == std::partial_ordering::less ||
             c == std::partial_ordering::equivalent;
    }
    case Op::kGt:
      return v.comparable_with(value) &&
             v.compare(value) == std::partial_ordering::greater;
    case Op::kGe: {
      if (!v.comparable_with(value)) return false;
      const auto c = v.compare(value);
      return c == std::partial_ordering::greater ||
             c == std::partial_ordering::equivalent;
    }
    case Op::kPrefix:
      return v.is_string() && value.is_string() &&
             v.as_string().starts_with(value.as_string());
  }
  return false;
}

std::string Predicate::to_string() const {
  if (op == Op::kPresent) return "[" + attr + ",isPresent]";
  return "[" + attr + "," + tmps::to_string(op) + "," + value.to_string() +
         "]";
}

}  // namespace tmps
