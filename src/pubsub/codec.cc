#include "pubsub/codec.h"

#include <cstring>

namespace tmps {

namespace {

// Sanity bounds: decoding never allocates absurd amounts for hostile input.
constexpr std::uint32_t kMaxString = 1 << 20;
constexpr std::uint32_t kMaxList = 1 << 16;

enum class PayloadTag : std::uint8_t {
  Advertise = 1,
  Unadvertise = 2,
  Subscribe = 3,
  Unsubscribe = 4,
  Publish = 5,
  MoveNegotiate = 6,
  MoveApprove = 7,
  MoveReject = 8,
  MoveState = 9,
  MoveAck = 10,
  MoveAbort = 11,
  BufferedState = 12,
  TradMoveRequest = 13,
  TradReady = 14,
  TradReject = 15,
  RepairDigest = 16,
  RepairRequest = 17,
  RepairProbe = 18,
  RepairVerdict = 19,
  SessionOpen = 20,
  SessionResume = 21,
  SessionAck = 22,
  SessionHeartbeat = 23,
  SessionClose = 24,
  SessionForward = 25,
};

}  // namespace

// --- Writer / Reader -----------------------------------------------------------

void Writer::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<char>(v >> (8 * i)));
}

void Writer::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<char>(v >> (8 * i)));
}

void Writer::f64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void Writer::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.append(s.data(), s.size());
}

bool Reader::take(void* out, std::size_t n) {
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  std::memcpy(out, data_.data() + pos_, n);
  pos_ += n;
  return true;
}

bool Reader::u8(std::uint8_t& v) { return take(&v, 1); }

bool Reader::u32(std::uint32_t& v) {
  unsigned char b[4];
  if (!take(b, 4)) return false;
  v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | b[i];
  return true;
}

bool Reader::u64(std::uint64_t& v) {
  unsigned char b[8];
  if (!take(b, 8)) return false;
  v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | b[i];
  return true;
}

bool Reader::i64(std::int64_t& v) {
  std::uint64_t u;
  if (!u64(u)) return false;
  v = static_cast<std::int64_t>(u);
  return true;
}

bool Reader::f64(double& v) {
  std::uint64_t bits;
  if (!u64(bits)) return false;
  std::memcpy(&v, &bits, sizeof(v));
  return true;
}

bool Reader::str(std::string& s) {
  std::uint32_t len;
  if (!u32(len)) return false;
  if (len > kMaxString || data_.size() - pos_ < len) {
    ok_ = false;
    return false;
  }
  s.assign(data_.data() + pos_, len);
  pos_ += len;
  return true;
}

// --- building blocks -------------------------------------------------------------

void encode(Writer& w, const Value& v) {
  switch (v.kind()) {
    case Value::Kind::Int:
      w.u8(0);
      w.i64(v.as_int());
      break;
    case Value::Kind::Real:
      w.u8(1);
      w.f64(v.as_real());
      break;
    case Value::Kind::String:
      w.u8(2);
      w.str(v.as_string());
      break;
  }
}

bool decode(Reader& r, Value& v) {
  std::uint8_t kind;
  if (!r.u8(kind)) return false;
  switch (kind) {
    case 0: {
      std::int64_t x;
      if (!r.i64(x)) return false;
      v = Value{x};
      return true;
    }
    case 1: {
      double x;
      if (!r.f64(x)) return false;
      v = Value{x};
      return true;
    }
    case 2: {
      std::string s;
      if (!r.str(s)) return false;
      v = Value{std::move(s)};
      return true;
    }
    default:
      return false;
  }
}

void encode(Writer& w, const Predicate& p) {
  w.str(p.attr);
  w.u8(static_cast<std::uint8_t>(p.op));
  encode(w, p.value);
}

bool decode(Reader& r, Predicate& p) {
  std::uint8_t op;
  if (!r.str(p.attr) || !r.u8(op)) return false;
  if (op > static_cast<std::uint8_t>(Op::kPrefix)) return false;
  p.op = static_cast<Op>(op);
  return decode(r, p.value);
}

void encode(Writer& w, const Filter& f) {
  w.u32(static_cast<std::uint32_t>(f.predicates().size()));
  for (const auto& p : f.predicates()) encode(w, p);
}

bool decode(Reader& r, Filter& f) {
  std::uint32_t n;
  if (!r.u32(n) || n > kMaxList) return false;
  f = Filter{};
  for (std::uint32_t i = 0; i < n; ++i) {
    Predicate p;
    if (!decode(r, p)) return false;
    f.add(p);
  }
  return true;
}

void encode(Writer& w, const EntityId& id) {
  w.u64(id.client);
  w.u32(id.seq);
}

bool decode(Reader& r, EntityId& id) {
  return r.u64(id.client) && r.u32(id.seq);
}

void encode(Writer& w, const Publication& p) {
  encode(w, p.id());
  w.u32(static_cast<std::uint32_t>(p.attrs().size()));
  for (const auto& [k, v] : p.attrs()) {
    w.str(k);
    encode(w, v);
  }
}

bool decode(Reader& r, Publication& p) {
  PublicationId id;
  std::uint32_t n;
  if (!decode(r, id) || !r.u32(n) || n > kMaxList) return false;
  p = Publication{};
  p.set_id(id);
  for (std::uint32_t i = 0; i < n; ++i) {
    std::string k;
    Value v;
    if (!r.str(k) || !decode(r, v)) return false;
    p.set(std::move(k), std::move(v));
  }
  return true;
}

void encode(Writer& w, const Subscription& s) {
  encode(w, s.id);
  encode(w, s.filter);
}

bool decode(Reader& r, Subscription& s) {
  return decode(r, s.id) && decode(r, s.filter);
}

void encode(Writer& w, const Advertisement& a) {
  encode(w, a.id);
  encode(w, a.filter);
}

bool decode(Reader& r, Advertisement& a) {
  return decode(r, a.id) && decode(r, a.filter);
}

// --- vectors ----------------------------------------------------------------------

namespace {

template <typename T>
void encode_vec(Writer& w, const std::vector<T>& xs) {
  w.u32(static_cast<std::uint32_t>(xs.size()));
  for (const auto& x : xs) encode(w, x);
}

template <typename T>
bool decode_vec(Reader& r, std::vector<T>& xs) {
  std::uint32_t n;
  if (!r.u32(n) || n > kMaxList) return false;
  xs.clear();
  xs.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    T x;
    if (!decode(r, x)) return false;
    xs.push_back(std::move(x));
  }
  return true;
}

struct PayloadEncoder {
  Writer& w;
  void operator()(const AdvertiseMsg& m) {
    w.u8(static_cast<std::uint8_t>(PayloadTag::Advertise));
    encode(w, m.adv);
  }
  void operator()(const UnadvertiseMsg& m) {
    w.u8(static_cast<std::uint8_t>(PayloadTag::Unadvertise));
    encode(w, m.adv_id);
  }
  void operator()(const SubscribeMsg& m) {
    w.u8(static_cast<std::uint8_t>(PayloadTag::Subscribe));
    encode(w, m.sub);
  }
  void operator()(const UnsubscribeMsg& m) {
    w.u8(static_cast<std::uint8_t>(PayloadTag::Unsubscribe));
    encode(w, m.sub_id);
  }
  void operator()(const PublishMsg& m) {
    w.u8(static_cast<std::uint8_t>(PayloadTag::Publish));
    encode(w, m.pub);
  }
  void operator()(const MoveNegotiateMsg& m) {
    w.u8(static_cast<std::uint8_t>(PayloadTag::MoveNegotiate));
    w.u64(m.txn);
    w.u64(m.client);
    w.u32(m.source);
    w.u32(m.target);
    encode_vec(w, m.subs);
    encode_vec(w, m.advs);
    w.u32(m.next_seq);
  }
  void operator()(const MoveApproveMsg& m) {
    w.u8(static_cast<std::uint8_t>(PayloadTag::MoveApprove));
    w.u64(m.txn);
    w.u64(m.client);
    w.u32(m.source);
    w.u32(m.target);
    encode_vec(w, m.subs);
    encode_vec(w, m.advs);
  }
  void operator()(const MoveRejectMsg& m) {
    w.u8(static_cast<std::uint8_t>(PayloadTag::MoveReject));
    w.u64(m.txn);
    w.u64(m.client);
    w.str(m.reason);
  }
  void operator()(const MoveStateMsg& m) {
    w.u8(static_cast<std::uint8_t>(PayloadTag::MoveState));
    w.u64(m.txn);
    w.u64(m.client);
    w.u32(m.source);
    w.u32(m.target);
    encode_vec(w, m.queued_notifications);
    encode_vec(w, m.queued_commands);
    encode_vec(w, m.sub_ids);
    encode_vec(w, m.adv_ids);
  }
  void operator()(const MoveAckMsg& m) {
    w.u8(static_cast<std::uint8_t>(PayloadTag::MoveAck));
    w.u64(m.txn);
    w.u64(m.client);
  }
  void operator()(const MoveAbortMsg& m) {
    w.u8(static_cast<std::uint8_t>(PayloadTag::MoveAbort));
    w.u64(m.txn);
    w.u64(m.client);
    w.u32(m.source);
    w.u32(m.target);
    encode_vec(w, m.sub_ids);
    encode_vec(w, m.adv_ids);
  }
  void operator()(const BufferedStateMsg& m) {
    w.u8(static_cast<std::uint8_t>(PayloadTag::BufferedState));
    w.u64(m.txn);
    w.u64(m.client);
    encode_vec(w, m.queued_notifications);
    encode_vec(w, m.queued_commands);
  }
  void operator()(const TradMoveRequestMsg& m) {
    w.u8(static_cast<std::uint8_t>(PayloadTag::TradMoveRequest));
    w.u64(m.txn);
    w.u64(m.client);
    w.u32(m.source);
    w.u32(m.target);
    encode_vec(w, m.subs);
    encode_vec(w, m.advs);
    w.u32(m.next_seq);
  }
  void operator()(const TradReadyMsg& m) {
    w.u8(static_cast<std::uint8_t>(PayloadTag::TradReady));
    w.u64(m.txn);
    w.u64(m.client);
  }
  void operator()(const TradRejectMsg& m) {
    w.u8(static_cast<std::uint8_t>(PayloadTag::TradReject));
    w.u64(m.txn);
    w.u64(m.client);
    w.str(m.reason);
  }
  void operator()(const RepairDigestMsg& m) {
    w.u8(static_cast<std::uint8_t>(PayloadTag::RepairDigest));
    w.u64(m.round);
    w.u32(m.origin);
    encode_vec(w, m.sub_ids);
    encode_vec(w, m.adv_ids);
    encode_vec(w, m.in_flight_subs);
    encode_vec(w, m.in_flight_advs);
  }
  void operator()(const RepairRequestMsg& m) {
    w.u8(static_cast<std::uint8_t>(PayloadTag::RepairRequest));
    w.u64(m.round);
    w.u32(m.origin);
    encode_vec(w, m.sub_ids);
    encode_vec(w, m.adv_ids);
  }
  void operator()(const RepairProbeMsg& m) {
    w.u8(static_cast<std::uint8_t>(PayloadTag::RepairProbe));
    w.u64(m.txn);
    w.u32(m.asker);
  }
  void operator()(const RepairVerdictMsg& m) {
    w.u8(static_cast<std::uint8_t>(PayloadTag::RepairVerdict));
    w.u64(m.txn);
    w.u8(static_cast<std::uint8_t>(m.verdict));
    w.u32(m.source);
    w.u32(m.target);
    w.u64(m.client);
  }
  void operator()(const SessionOpenMsg& m) {
    w.u8(static_cast<std::uint8_t>(PayloadTag::SessionOpen));
    w.u64(m.client);
    w.u32(m.at);
    w.u8(m.has_will ? 1 : 0);
    if (m.has_will) encode(w, m.will);
  }
  void operator()(const SessionResumeMsg& m) {
    w.u8(static_cast<std::uint8_t>(PayloadTag::SessionResume));
    w.u64(m.token);
    w.u64(m.client);
    w.u32(m.at);
  }
  void operator()(const SessionAckMsg& m) {
    w.u8(static_cast<std::uint8_t>(PayloadTag::SessionAck));
    w.u64(m.token);
    w.u64(m.client);
    w.u8(static_cast<std::uint8_t>(m.verdict));
    w.u64(m.txn);
    w.u32(m.home);
    w.u8(m.has_will ? 1 : 0);
    if (m.has_will) encode(w, m.will);
  }
  void operator()(const SessionHeartbeatMsg& m) {
    w.u8(static_cast<std::uint8_t>(PayloadTag::SessionHeartbeat));
    w.u64(m.token);
    w.u64(m.client);
  }
  void operator()(const SessionCloseMsg& m) {
    w.u8(static_cast<std::uint8_t>(PayloadTag::SessionClose));
    w.u64(m.token);
    w.u64(m.client);
    w.u8(m.fire_will ? 1 : 0);
  }
  void operator()(const SessionForwardMsg& m) {
    w.u8(static_cast<std::uint8_t>(PayloadTag::SessionForward));
    w.u64(m.token);
    w.u64(m.client);
    w.u32(m.origin);
    encode_vec(w, m.pubs);
  }
};

bool decode_payload(Reader& r, Payload& payload) {
  std::uint8_t tag;
  if (!r.u8(tag)) return false;
  switch (static_cast<PayloadTag>(tag)) {
    case PayloadTag::Advertise: {
      AdvertiseMsg m;
      if (!decode(r, m.adv)) return false;
      payload = std::move(m);
      return true;
    }
    case PayloadTag::Unadvertise: {
      UnadvertiseMsg m;
      if (!decode(r, m.adv_id)) return false;
      payload = m;
      return true;
    }
    case PayloadTag::Subscribe: {
      SubscribeMsg m;
      if (!decode(r, m.sub)) return false;
      payload = std::move(m);
      return true;
    }
    case PayloadTag::Unsubscribe: {
      UnsubscribeMsg m;
      if (!decode(r, m.sub_id)) return false;
      payload = m;
      return true;
    }
    case PayloadTag::Publish: {
      PublishMsg m;
      if (!decode(r, m.pub)) return false;
      payload = std::move(m);
      return true;
    }
    case PayloadTag::MoveNegotiate: {
      MoveNegotiateMsg m;
      if (!r.u64(m.txn) || !r.u64(m.client) || !r.u32(m.source) ||
          !r.u32(m.target) || !decode_vec(r, m.subs) ||
          !decode_vec(r, m.advs) || !r.u32(m.next_seq)) {
        return false;
      }
      payload = std::move(m);
      return true;
    }
    case PayloadTag::MoveApprove: {
      MoveApproveMsg m;
      if (!r.u64(m.txn) || !r.u64(m.client) || !r.u32(m.source) ||
          !r.u32(m.target) || !decode_vec(r, m.subs) ||
          !decode_vec(r, m.advs)) {
        return false;
      }
      payload = std::move(m);
      return true;
    }
    case PayloadTag::MoveReject: {
      MoveRejectMsg m;
      if (!r.u64(m.txn) || !r.u64(m.client) || !r.str(m.reason)) return false;
      payload = std::move(m);
      return true;
    }
    case PayloadTag::MoveState: {
      MoveStateMsg m;
      if (!r.u64(m.txn) || !r.u64(m.client) || !r.u32(m.source) ||
          !r.u32(m.target) || !decode_vec(r, m.queued_notifications) ||
          !decode_vec(r, m.queued_commands) || !decode_vec(r, m.sub_ids) ||
          !decode_vec(r, m.adv_ids)) {
        return false;
      }
      payload = std::move(m);
      return true;
    }
    case PayloadTag::MoveAck: {
      MoveAckMsg m;
      if (!r.u64(m.txn) || !r.u64(m.client)) return false;
      payload = m;
      return true;
    }
    case PayloadTag::MoveAbort: {
      MoveAbortMsg m;
      if (!r.u64(m.txn) || !r.u64(m.client) || !r.u32(m.source) ||
          !r.u32(m.target) || !decode_vec(r, m.sub_ids) ||
          !decode_vec(r, m.adv_ids)) {
        return false;
      }
      payload = std::move(m);
      return true;
    }
    case PayloadTag::BufferedState: {
      BufferedStateMsg m;
      if (!r.u64(m.txn) || !r.u64(m.client) ||
          !decode_vec(r, m.queued_notifications) ||
          !decode_vec(r, m.queued_commands)) {
        return false;
      }
      payload = std::move(m);
      return true;
    }
    case PayloadTag::TradMoveRequest: {
      TradMoveRequestMsg m;
      if (!r.u64(m.txn) || !r.u64(m.client) || !r.u32(m.source) ||
          !r.u32(m.target) || !decode_vec(r, m.subs) ||
          !decode_vec(r, m.advs) || !r.u32(m.next_seq)) {
        return false;
      }
      payload = std::move(m);
      return true;
    }
    case PayloadTag::TradReady: {
      TradReadyMsg m;
      if (!r.u64(m.txn) || !r.u64(m.client)) return false;
      payload = m;
      return true;
    }
    case PayloadTag::TradReject: {
      TradRejectMsg m;
      if (!r.u64(m.txn) || !r.u64(m.client) || !r.str(m.reason)) return false;
      payload = std::move(m);
      return true;
    }
    case PayloadTag::RepairDigest: {
      RepairDigestMsg m;
      if (!r.u64(m.round) || !r.u32(m.origin) || !decode_vec(r, m.sub_ids) ||
          !decode_vec(r, m.adv_ids) || !decode_vec(r, m.in_flight_subs) ||
          !decode_vec(r, m.in_flight_advs)) {
        return false;
      }
      payload = std::move(m);
      return true;
    }
    case PayloadTag::RepairRequest: {
      RepairRequestMsg m;
      if (!r.u64(m.round) || !r.u32(m.origin) || !decode_vec(r, m.sub_ids) ||
          !decode_vec(r, m.adv_ids)) {
        return false;
      }
      payload = std::move(m);
      return true;
    }
    case PayloadTag::RepairProbe: {
      RepairProbeMsg m;
      if (!r.u64(m.txn) || !r.u32(m.asker)) return false;
      payload = m;
      return true;
    }
    case PayloadTag::RepairVerdict: {
      RepairVerdictMsg m;
      std::uint8_t verdict;
      if (!r.u64(m.txn) || !r.u8(verdict) ||
          verdict > static_cast<std::uint8_t>(RepairVerdict::Aborted) ||
          !r.u32(m.source) || !r.u32(m.target) || !r.u64(m.client)) {
        return false;
      }
      m.verdict = static_cast<RepairVerdict>(verdict);
      payload = m;
      return true;
    }
    case PayloadTag::SessionOpen: {
      SessionOpenMsg m;
      std::uint8_t has_will;
      if (!r.u64(m.client) || !r.u32(m.at) || !r.u8(has_will) || has_will > 1) {
        return false;
      }
      m.has_will = has_will != 0;
      if (m.has_will && !decode(r, m.will)) return false;
      payload = std::move(m);
      return true;
    }
    case PayloadTag::SessionResume: {
      SessionResumeMsg m;
      if (!r.u64(m.token) || !r.u64(m.client) || !r.u32(m.at)) return false;
      payload = m;
      return true;
    }
    case PayloadTag::SessionAck: {
      SessionAckMsg m;
      std::uint8_t verdict;
      std::uint8_t has_will;
      if (!r.u64(m.token) || !r.u64(m.client) || !r.u8(verdict) ||
          verdict > static_cast<std::uint8_t>(SessionVerdict::Unknown) ||
          !r.u64(m.txn) || !r.u32(m.home) || !r.u8(has_will) || has_will > 1) {
        return false;
      }
      m.verdict = static_cast<SessionVerdict>(verdict);
      m.has_will = has_will != 0;
      if (m.has_will && !decode(r, m.will)) return false;
      payload = std::move(m);
      return true;
    }
    case PayloadTag::SessionHeartbeat: {
      SessionHeartbeatMsg m;
      if (!r.u64(m.token) || !r.u64(m.client)) return false;
      payload = m;
      return true;
    }
    case PayloadTag::SessionClose: {
      SessionCloseMsg m;
      std::uint8_t fire;
      if (!r.u64(m.token) || !r.u64(m.client) || !r.u8(fire) || fire > 1) {
        return false;
      }
      m.fire_will = fire != 0;
      payload = m;
      return true;
    }
    case PayloadTag::SessionForward: {
      SessionForwardMsg m;
      if (!r.u64(m.token) || !r.u64(m.client) || !r.u32(m.origin) ||
          !decode_vec(r, m.pubs)) {
        return false;
      }
      payload = std::move(m);
      return true;
    }
  }
  return false;
}

}  // namespace

std::string encode_message(const Message& m) {
  Writer w;
  w.u64(m.id);
  w.u64(m.cause);
  // One flag byte: bit 0 = unicast_dest present, bit 1 = provenance present.
  std::uint8_t flags = 0;
  if (m.unicast_dest) flags |= 1;
  if (m.prov) flags |= 2;
  w.u8(flags);
  if (m.unicast_dest) w.u32(*m.unicast_dest);
  if (m.prov) {
    w.u64(m.prov->trace);
    w.f64(m.prov->origin_time);
    w.f64(m.prov->last_hop_time);
    w.u8(m.prov->hops);
    w.u8(m.prov->sampled ? 1 : 0);
  }
  std::visit(PayloadEncoder{w}, m.payload);
  return w.take();
}

std::optional<Message> decode_message(std::string_view bytes) {
  Reader r(bytes);
  Message m;
  std::uint8_t flags;
  if (!r.u64(m.id) || !r.u64(m.cause) || !r.u8(flags)) return std::nullopt;
  if (flags & ~std::uint8_t{3}) return std::nullopt;  // unknown flag bits
  if (flags & 1) {
    BrokerId dest;
    if (!r.u32(dest)) return std::nullopt;
    m.unicast_dest = dest;
  }
  if (flags & 2) {
    obs::ProvenanceTag tag;
    std::uint8_t hops, sampled;
    if (!r.u64(tag.trace) || !r.f64(tag.origin_time) ||
        !r.f64(tag.last_hop_time) || !r.u8(hops) || !r.u8(sampled)) {
      return std::nullopt;
    }
    tag.hops = hops;
    tag.sampled = sampled != 0;
    m.prov = tag;
  }
  if (!decode_payload(r, m.payload)) return std::nullopt;
  if (!r.at_end()) return std::nullopt;  // trailing garbage
  return m;
}

}  // namespace tmps
