#include "pubsub/messages.h"

namespace tmps {
namespace {

struct TypeNameVisitor {
  std::string_view operator()(const AdvertiseMsg&) const { return "adv"; }
  std::string_view operator()(const UnadvertiseMsg&) const { return "unadv"; }
  std::string_view operator()(const SubscribeMsg&) const { return "sub"; }
  std::string_view operator()(const UnsubscribeMsg&) const { return "unsub"; }
  std::string_view operator()(const PublishMsg&) const { return "pub"; }
  std::string_view operator()(const MoveNegotiateMsg&) const {
    return "move-negotiate";
  }
  std::string_view operator()(const MoveApproveMsg&) const {
    return "move-approve";
  }
  std::string_view operator()(const MoveRejectMsg&) const {
    return "move-reject";
  }
  std::string_view operator()(const MoveStateMsg&) const {
    return "move-state";
  }
  std::string_view operator()(const MoveAckMsg&) const { return "move-ack"; }
  std::string_view operator()(const MoveAbortMsg&) const {
    return "move-abort";
  }
  std::string_view operator()(const BufferedStateMsg&) const {
    return "buffered-state";
  }
  std::string_view operator()(const TradMoveRequestMsg&) const {
    return "trad-move-request";
  }
  std::string_view operator()(const TradReadyMsg&) const {
    return "trad-ready";
  }
  std::string_view operator()(const TradRejectMsg&) const {
    return "trad-reject";
  }
  std::string_view operator()(const RepairDigestMsg&) const {
    return "repair-digest";
  }
  std::string_view operator()(const RepairRequestMsg&) const {
    return "repair-request";
  }
  std::string_view operator()(const RepairProbeMsg&) const {
    return "repair-probe";
  }
  std::string_view operator()(const RepairVerdictMsg&) const {
    return "repair-verdict";
  }
  std::string_view operator()(const SessionOpenMsg&) const {
    return "session-open";
  }
  std::string_view operator()(const SessionResumeMsg&) const {
    return "session-resume";
  }
  std::string_view operator()(const SessionAckMsg&) const {
    return "session-ack";
  }
  std::string_view operator()(const SessionHeartbeatMsg&) const {
    return "session-heartbeat";
  }
  std::string_view operator()(const SessionCloseMsg&) const {
    return "session-close";
  }
  std::string_view operator()(const SessionForwardMsg&) const {
    return "session-forward";
  }
};

}  // namespace

const char* to_string(RepairVerdict v) {
  switch (v) {
    case RepairVerdict::InFlight:
      return "in-flight";
    case RepairVerdict::Committed:
      return "committed";
    case RepairVerdict::Aborted:
      return "aborted";
  }
  return "?";
}

const char* to_string(SessionVerdict v) {
  switch (v) {
    case SessionVerdict::Resumed:
      return "resumed";
    case SessionVerdict::Moving:
      return "moving";
    case SessionVerdict::Forwarding:
      return "forwarding";
    case SessionVerdict::Expired:
      return "expired";
    case SessionVerdict::Unknown:
      return "unknown";
  }
  return "?";
}

std::string_view Message::type_name() const {
  return std::visit(TypeNameVisitor{}, payload);
}

bool Message::is_control() const {
  return !std::holds_alternative<AdvertiseMsg>(payload) &&
         !std::holds_alternative<UnadvertiseMsg>(payload) &&
         !std::holds_alternative<SubscribeMsg>(payload) &&
         !std::holds_alternative<UnsubscribeMsg>(payload) &&
         !std::holds_alternative<PublishMsg>(payload);
}

std::string to_string(const Message& m) {
  std::string s = "msg#" + std::to_string(m.id) + " " +
                  std::string(m.type_name());
  if (m.unicast_dest) s += " ->B" + std::to_string(*m.unicast_dest);
  return s;
}

}  // namespace tmps
