#include "routing/covering_index.h"

#include <algorithm>

namespace tmps {

namespace {

void append(const std::vector<EntityId>& from, std::vector<EntityId>& out) {
  out.insert(out.end(), from.begin(), from.end());
}

}  // namespace

const std::string* CoveringIndex::pick_bucket(const Filter& filter,
                                              Value& value) const {
  // Unsatisfiable filters go to the rest list: they are covered by
  // everything (Filter::covers returns true for any coverer), so they must
  // be candidates of every probe.
  if (!filter.satisfiable()) return nullptr;
  const std::string* best_attr = nullptr;
  std::size_t best_size = 0;
  for (const auto& [attr, c] : filter.constraints()) {
    const auto v = c.singleton_value();
    if (!v) continue;
    std::size_t sz = 0;
    if (const auto pit = buckets_.find(attr); pit != buckets_.end()) {
      if (const auto bit = pit->second.find(*v); bit != pit->second.end()) {
        sz = bit->second.size();
      }
    }
    if (!best_attr || sz < best_size) {
      best_attr = &attr;
      best_size = sz;
      value = *v;
    }
  }
  return best_attr;
}

void CoveringIndex::insert(const EntityId& id, const Filter& filter) {
  Value v;
  if (const std::string* attr = pick_bucket(filter, v)) {
    buckets_[*attr][v].push_back(id);
  } else {
    rest_.push_back(id);
  }
  ++size_;
}

void CoveringIndex::erase(const EntityId& id, const Filter& filter) {
  auto drop_one = [&](Posting& p) {
    const auto it = std::find(p.begin(), p.end(), id);
    if (it == p.end()) return false;
    p.erase(it);
    --size_;
    return true;
  };
  // The entry may sit under ANY of its singleton attributes (the smallest-
  // bucket choice at insert time depends on history), so try them all.
  if (filter.satisfiable()) {
    for (const auto& [attr, c] : filter.constraints()) {
      const auto v = c.singleton_value();
      if (!v) continue;
      const auto pit = buckets_.find(attr);
      if (pit == buckets_.end()) continue;
      const auto bit = pit->second.find(*v);
      if (bit == pit->second.end()) continue;
      if (drop_one(bit->second)) {
        if (bit->second.empty()) pit->second.erase(bit);
        if (pit->second.empty()) buckets_.erase(pit);
        return;
      }
    }
  }
  drop_one(rest_);
}

void CoveringIndex::range_probe(const PostingList& pl, const Constraint& c,
                                std::vector<EntityId>& out) {
  const auto& lo = c.lower_bound();
  const auto& hi = c.upper_bound();
  auto it = lo ? pl.lower_bound(*lo) : pl.begin();
  const auto end = hi ? pl.upper_bound(*hi) : pl.end();
  for (; it != end; ++it) append(it->second, out);
}

void CoveringIndex::coverer_candidates(const Filter& f,
                                       std::vector<EntityId>& out) const {
  if (!f.satisfiable()) {
    // Everything covers an unsatisfiable filter.
    all_ids(out);
    return;
  }
  for (const auto& [attr, c] : f.constraints()) {
    const auto v = c.singleton_value();
    if (!v) continue;
    const auto pit = buckets_.find(attr);
    if (pit == buckets_.end()) continue;
    const auto bit = pit->second.find(*v);
    if (bit != pit->second.end()) append(bit->second, out);
  }
  append(rest_, out);
}

void CoveringIndex::covered_candidates(const Filter& f,
                                       std::vector<EntityId>& out) const {
  for (const auto& [attr, pl] : buckets_) {
    const auto cit = f.constraints().find(attr);
    if (cit == f.constraints().end()) {
      // f does not constrain this attribute; entries filed here may still
      // be covered by (or intersect) f, so the whole posting list counts.
      for (const auto& [v, posting] : pl) append(posting, out);
    } else {
      range_probe(pl, cit->second, out);
    }
  }
  append(rest_, out);
}

void CoveringIndex::sub_intersect_candidates(const Filter& adv,
                                             std::vector<EntityId>& out) const {
  for (const auto& [attr, pl] : buckets_) {
    const auto cit = adv.constraints().find(attr);
    // A subscription filed under `attr` constrains it; intersection with an
    // advertisement that does not constrain `attr` is impossible
    // (attrs(sub) ⊆ attrs(adv)), so the whole posting list is skipped.
    if (cit == adv.constraints().end()) continue;
    range_probe(pl, cit->second, out);
  }
  append(rest_, out);
}

void CoveringIndex::adv_intersect_candidates(const Filter& sub,
                                             std::vector<EntityId>& out) const {
  // Identical shape to covered_candidates: an advertisement may constrain
  // attributes the subscription is silent on.
  covered_candidates(sub, out);
}

void CoveringIndex::all_ids(std::vector<EntityId>& out) const {
  for (const auto& [attr, pl] : buckets_) {
    for (const auto& [v, posting] : pl) append(posting, out);
  }
  append(rest_, out);
}

}  // namespace tmps
