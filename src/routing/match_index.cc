#include "routing/match_index.h"

#include <algorithm>

namespace tmps {

std::string SubMatchIndex::key_of(const std::string& attr, const Value& v) {
  // Attribute names cannot contain '\x01'; the kind byte keeps 1 and "1"
  // (and 1 vs 1.0, which compare equal but hash differently) apart — a
  // bucket miss for an equal-valued different-kind publication is handled
  // by also probing with the publication's own representation, so we
  // normalize numerics to their decimal text.
  std::string key = attr;
  key.push_back('\x01');
  if (v.is_numeric()) {
    const double d = v.numeric();
    if (d == static_cast<double>(static_cast<long long>(d))) {
      key += std::to_string(static_cast<long long>(d));
    } else {
      key += std::to_string(d);
    }
  } else {
    key.push_back('s');
    key += v.as_string();
  }
  return key;
}

const Predicate* SubMatchIndex::pick_bucket(const Filter& filter) const {
  const Predicate* best = nullptr;
  std::size_t best_size = 0;
  for (const auto& p : filter.predicates()) {
    if (p.op != Op::kEq) continue;
    const auto it = buckets_.find(key_of(p.attr, p.value));
    const std::size_t size = it == buckets_.end() ? 0 : it->second.size();
    if (!best || size < best_size) {
      best = &p;
      best_size = size;
    }
  }
  return best;
}

void SubMatchIndex::insert(const SubscriptionId& id, const Filter& filter) {
  if (const Predicate* p = pick_bucket(filter)) {
    buckets_[key_of(p->attr, p->value)].push_back(id);
    ++indexed_;
  } else {
    scan_.push_back(id);
  }
}

void SubMatchIndex::erase(const SubscriptionId& id, const Filter& filter) {
  // The entry is in one of the filter's equality buckets or the scan list;
  // try them all (erase is rare compared to matching).
  for (const auto& p : filter.predicates()) {
    if (p.op != Op::kEq) continue;
    auto it = buckets_.find(key_of(p.attr, p.value));
    if (it == buckets_.end()) continue;
    auto& ids = it->second;
    auto pos = std::find(ids.begin(), ids.end(), id);
    if (pos != ids.end()) {
      ids.erase(pos);
      if (ids.empty()) buckets_.erase(it);
      --indexed_;
      return;
    }
  }
  auto pos = std::find(scan_.begin(), scan_.end(), id);
  if (pos != scan_.end()) scan_.erase(pos);
}

void SubMatchIndex::candidates(const Publication& pub,
                               std::vector<SubscriptionId>& out) const {
  for (const auto& [attr, v] : pub.attrs()) {
    const auto it = buckets_.find(key_of(attr, v));
    if (it != buckets_.end()) {
      out.insert(out.end(), it->second.begin(), it->second.end());
    }
  }
  out.insert(out.end(), scan_.begin(), scan_.end());
}

}  // namespace tmps
