// Whole-network routing-consistency auditor (the checkable form of the
// Sec. 3.5 properties).
//
// Consistency, operationally: for every subscription S hosted at broker
// B(S) and every advertisement A hosted at broker B(A) whose filter
// intersects S, a publication conforming to both must be deliverable — i.e.
// starting at B(A), greedily following PRT entries for publications matching
// S must reach B(S) without loops. The auditor walks the tables directly
// (no messages) and reports every broken pair.
//
// Stale extra entries are allowed (the paper's consistency explicitly
// permits them); only *missing or misdirected* paths are violations.
//
// Scope: the per-subscription walk assumes each subscription owns its
// delivery path — exact for covering-disabled networks (every
// reconfiguration-mobility deployment; see DESIGN.md §5a). Under covering,
// quenched subscriptions legitimately ride their coverer's path and the
// walk would report false positives.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "routing/overlay.h"
#include "routing/routing_tables.h"

namespace tmps {

struct AuditViolation {
  SubscriptionId sub;
  BrokerId subscriber_broker = kNoBroker;
  BrokerId publisher_broker = kNoBroker;
  std::string detail;

  std::string to_string() const;
};

class RoutingAuditor {
 public:
  /// `tables_of` resolves a broker id to its routing tables.
  RoutingAuditor(const Overlay& overlay,
                 std::function<const RoutingTables&(BrokerId)> tables_of)
      : overlay_(&overlay), tables_of_(std::move(tables_of)) {}

  /// Declares where a client (and hence its subscriptions) currently lives.
  void expect_subscriber(const SubscriptionId& sub, const Filter& filter,
                         BrokerId at);
  /// Declares a publisher/advertisement position.
  void expect_publisher(const AdvertisementId& adv, const Filter& filter,
                        BrokerId at);

  /// Checks every intersecting (advertisement, subscription) pair. Returns
  /// all violations (empty = consistent).
  std::vector<AuditViolation> audit() const;

  /// Additionally verifies no broker holds unresolved shadow state.
  std::vector<AuditViolation> audit_no_shadows() const;

 private:
  struct Expected {
    Filter filter;
    BrokerId at = kNoBroker;
  };

  /// Follows PRT entries for `sub` from `from` to `to`; empty string on
  /// success, else a description of where the walk broke.
  std::string walk(const SubscriptionId& sub, BrokerId from, BrokerId to,
                   const Filter& sub_filter) const;

  const Overlay* overlay_;
  std::function<const RoutingTables&(BrokerId)> tables_of_;
  std::map<SubscriptionId, Expected> subs_;
  std::map<AdvertisementId, Expected> advs_;
};

}  // namespace tmps
