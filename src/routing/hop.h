// A routing-table "hop": where a message came from or should be sent next.
// Either a neighbouring broker or a locally attached client.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/ids.h"

namespace tmps {

struct Hop {
  enum class Kind : std::uint8_t { None, Broker, Client };

  Kind kind = Kind::None;
  BrokerId broker = kNoBroker;
  ClientId client = kNoClient;

  static Hop none() { return {}; }
  static Hop of_broker(BrokerId b) { return {Kind::Broker, b, kNoClient}; }
  static Hop of_client(ClientId c) { return {Kind::Client, kNoBroker, c}; }

  bool is_none() const { return kind == Kind::None; }
  bool is_broker() const { return kind == Kind::Broker; }
  bool is_client() const { return kind == Kind::Client; }

  friend bool operator==(const Hop&, const Hop&) = default;
  friend auto operator<=>(const Hop&, const Hop&) = default;

  std::string to_string() const {
    switch (kind) {
      case Kind::None: return "none";
      case Kind::Broker: return "B" + std::to_string(broker);
      case Kind::Client: return "C" + std::to_string(client);
    }
    return "?";
  }
};

}  // namespace tmps

template <>
struct std::hash<tmps::Hop> {
  std::size_t operator()(const tmps::Hop& h) const noexcept {
    const std::uint64_t k =
        (static_cast<std::uint64_t>(h.kind) << 62) ^
        (static_cast<std::uint64_t>(h.broker) << 32) ^ h.client;
    return std::hash<std::uint64_t>{}(k);
  }
};
