// Covering/subsumption pre-filter index over routing-table filters: one of
// the two applications of the two-stage candidate/verify design (the other
// is the publication-matching forwarding_index.h), answering the covering
// optimization's questions — "which existing entries could cover this
// filter?", "which could it cover?", "which could intersect it?" — without
// scanning the whole table (cf. Siena's covering poset and the per-attribute
// predicate indexes of Fabret et al.).
//
// Filing: every filter with at least one equality-pinned attribute is filed
// under ONE (attribute, value) key — adaptively the one whose bucket is
// currently smallest — inside an ordered per-attribute posting list keyed by
// value. Filters with no equality predicate (and unsatisfiable filters) fall
// back to a rest list that every probe includes.
//
// Probes (each sound AND complete — a superset of the true answer, verified
// by the caller with Filter::covers / intersects_advertisement):
//   * coverer_candidates(F): entries G that might cover F. If G is filed
//     under attribute a with value v then attrs(G) ∋ a and G's constraint on
//     a is {v}; G ⊇ F forces attrs(G) ⊆ attrs(F) and F's constraint on a to
//     be contained in {v}, i.e. F pins a = v too. So probing F's own
//     singleton attributes by exact value (plus the rest list) misses
//     nothing.
//   * covered_candidates(F): entries G that F might cover. Now F's
//     constraint on G's filing attribute a must CONTAIN {v} — but only when
//     F constrains a at all; G may pin attributes F is silent on. Per
//     attribute: range-scan F's interval over the posting list when F
//     constrains it, take the whole posting list when it does not.
//   * sub_intersect_candidates(A): subscription entries that might intersect
//     advertisement filter A. A subscription filed under a must have
//     attrs ∋ a, and intersection requires attrs(sub) ⊆ attrs(A) — so
//     attributes A does not constrain are SKIPPED entirely, and constrained
//     ones are range-scanned by A's interval.
//   * adv_intersect_candidates(S): advertisement entries a subscription
//     filter S might intersect. Same shape as covered_candidates: an
//     advertisement may pin attributes S is silent on, so unconstrained
//     attributes contribute their whole posting list.
//
// The index tracks table MEMBERSHIP only (maintained by RoutingTables'
// upsert/erase/shadow-install paths); per-link forwarding state is checked
// during verification, so direct forwarded_to mutation (broker, snapshot
// restore, tests) can never desynchronize it.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "common/ids.h"
#include "pubsub/filter.h"

namespace tmps {

class CoveringIndex {
 public:
  /// Files `id` under its filter. The same (id, filter) pair must be erased
  /// with the identical filter before re-inserting a changed one.
  void insert(const EntityId& id, const Filter& filter);
  void erase(const EntityId& id, const Filter& filter);

  /// Entries that might cover `f` (superset; may contain duplicates).
  void coverer_candidates(const Filter& f, std::vector<EntityId>& out) const;
  /// Entries `f` might cover.
  void covered_candidates(const Filter& f, std::vector<EntityId>& out) const;
  /// Subscription entries that might intersect advertisement filter `adv`.
  void sub_intersect_candidates(const Filter& adv,
                                std::vector<EntityId>& out) const;
  /// Advertisement entries that subscription filter `sub` might intersect.
  void adv_intersect_candidates(const Filter& sub,
                                std::vector<EntityId>& out) const;

  /// Every filed id (consistency checks).
  void all_ids(std::vector<EntityId>& out) const;

  std::size_t size() const { return size_; }
  std::size_t rest_count() const { return rest_.size(); }
  std::size_t attribute_count() const { return buckets_.size(); }

 private:
  using Posting = std::vector<EntityId>;
  // Ordered by value so interval probes are range scans; Value's total
  // order (numerics before strings) makes cross-domain keys harmless —
  // a probe interval only spans keys of its own domain.
  using PostingList = std::map<Value, Posting>;

  /// The (attribute, value) key to file `filter` under: among its
  /// equality-pinned attributes, the one whose bucket is currently smallest
  /// (ties broken by attribute order for determinism). Null attribute =
  /// rest list.
  const std::string* pick_bucket(const Filter& filter, Value& value) const;

  /// Appends every posting of `pl` that a filter whose constraint interval
  /// on this attribute is [lo, hi] could pin. Unbounded sides scan to the
  /// list's ends; open bounds are kept (superset is fine).
  static void range_probe(const PostingList& pl, const Constraint& c,
                          std::vector<EntityId>& out);

  std::map<std::string, PostingList> buckets_;
  Posting rest_;
  std::size_t size_ = 0;
};

}  // namespace tmps
