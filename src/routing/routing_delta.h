// The result type of RoutingTables' mutation API (add_sub/remove_sub/
// add_adv/remove_adv): an ordered list of link operations the caller must
// transmit, replacing the previous pattern where broker and mobility engine
// each recomputed quench/retract/unquench sets from free functions
// (routing/covering.h).
//
// Op order is significant and preserves the wire protocol's correctness
// windows: an un-quenched subscription is forwarded BEFORE the
// unsubscription that exposed it propagates (publications keep flowing), and
// a newly forwarded subscription precedes the retractions of the entries it
// strictly covers on that link.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/ids.h"
#include "pubsub/subscription.h"
#include "routing/hop.h"

namespace tmps {

struct RoutingOp {
  enum class Kind : std::uint8_t {
    kForwardSub,  // send Subscribe(id) over link
    kRetractSub,  // send Unsubscribe(id) over link
    kForwardAdv,  // send Advertise(id) over link
    kRetractAdv,  // send Unadvertise(id) over link
  };

  Kind kind;
  /// Subscription or advertisement id; the entry is live in the tables when
  /// the op is emitted (removal ops emit the subject's retraction last).
  EntityId id;
  Hop link;
  /// True when the op was induced by the covering optimization (a retract of
  /// a strictly-covered entry, or an un-quench re-forward) rather than by
  /// the subject operation itself — drives the covering metrics/trace tags.
  bool induced = false;
};

struct RoutingDelta {
  /// False when the mutation was dropped as stale (unknown id or an
  /// unsubscribe/unadvertise arriving from a hop that no longer owns the
  /// entry) — possible under covering churn; nothing must be sent.
  bool applied = true;
  std::vector<RoutingOp> ops;
  /// Links where the subject was quenched (covered by an already-forwarded
  /// entry); informational, nothing is transmitted for them.
  std::vector<Hop> quenched;

  bool empty() const { return ops.empty(); }
};

/// Which covering optimizations a mutation should apply — mirrors the
/// broker's configuration.
struct CoveringPolicy {
  bool subs = true;
  bool advs = true;
};

/// One routing-table mutation as a value, for RoutingTables::apply /
/// apply_batch: the four mutation entry points (add_sub/remove_sub/
/// add_adv/remove_adv) reified so callers can assemble a burst — a mobility
/// hand-off retracting a whole client profile, a balancer plan, the target
/// broker re-issuing a moved profile — and apply it in one batch that
/// amortizes forwarding-index maintenance.
struct RoutingMutation {
  enum class Kind : std::uint8_t {
    kAddSub,     // add_sub(sub, from)
    kRemoveSub,  // remove_sub(id, from)
    kAddAdv,     // add_adv(adv, from, flood_links)
    kRemoveAdv,  // remove_adv(id, from)
  };

  Kind kind = Kind::kAddSub;
  Subscription sub;    // kAddSub
  Advertisement adv;   // kAddAdv
  EntityId id;         // kRemoveSub / kRemoveAdv
  Hop from;
  /// Broker links an advertisement floods over (kAddAdv). Broker::
  /// inject_batch fills this with the overlay neighbours when left empty.
  std::vector<Hop> flood_links;

  static RoutingMutation add_sub(Subscription s, Hop from) {
    RoutingMutation m;
    m.kind = Kind::kAddSub;
    m.sub = std::move(s);
    m.from = from;
    return m;
  }
  static RoutingMutation remove_sub(const SubscriptionId& id, Hop from) {
    RoutingMutation m;
    m.kind = Kind::kRemoveSub;
    m.id = id;
    m.from = from;
    return m;
  }
  static RoutingMutation add_adv(Advertisement a, Hop from,
                                 std::vector<Hop> flood_links = {}) {
    RoutingMutation m;
    m.kind = Kind::kAddAdv;
    m.adv = std::move(a);
    m.from = from;
    m.flood_links = std::move(flood_links);
    return m;
  }
  static RoutingMutation remove_adv(const AdvertisementId& id, Hop from) {
    RoutingMutation m;
    m.kind = Kind::kRemoveAdv;
    m.id = id;
    m.from = from;
    return m;
  }
};

}  // namespace tmps
