// Per-broker content-based routing state: the Subscription Routing Table
// (SRT, advertisements used to route subscriptions) and the Publication
// Routing Table (PRT, subscriptions used to route publications), following
// the PADRES design the paper builds on.
//
// Entries support a *shadow* last hop: during a movement transaction the
// pre-move and post-move routing configurations coexist at brokers on the
// source→target path (Sec. 4.4). Publications route to both hops until the
// transaction commits (then the shadow becomes primary) or aborts (then the
// shadow is dropped) — this is what gives the routing layer its atomicity.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/ids.h"
#include "pubsub/publication.h"
#include "pubsub/subscription.h"
#include "routing/hop.h"
#include "routing/match_index.h"

namespace tmps {

struct SubEntry {
  Subscription sub;
  /// Link (or local client) the subscription arrived from; publications
  /// matching it are forwarded here.
  Hop lasthop;
  /// Links this subscription has been forwarded over (and not retracted).
  /// Used for unsubscription propagation and covering bookkeeping.
  std::unordered_set<Hop> forwarded_to;
  /// Post-move last hop installed by an in-flight movement transaction.
  std::optional<Hop> shadow_lasthop;
  TxnId shadow_txn = kNoTxn;
  /// True when the entry exists *only* as shadow state (the broker had no
  /// pre-move entry for this subscription); an abort removes it entirely.
  bool shadow_only = false;
};

struct AdvEntry {
  Advertisement adv;
  Hop lasthop;
  std::unordered_set<Hop> forwarded_to;
  std::optional<Hop> shadow_lasthop;
  TxnId shadow_txn = kNoTxn;
  bool shadow_only = false;
};

class RoutingTables {
 public:
  // --- PRT (subscriptions) ---
  SubEntry& upsert_sub(const Subscription& sub, Hop lasthop);
  SubEntry* find_sub(const SubscriptionId& id);
  const SubEntry* find_sub(const SubscriptionId& id) const;
  void erase_sub(const SubscriptionId& id);

  // --- SRT (advertisements) ---
  AdvEntry& upsert_adv(const Advertisement& adv, Hop lasthop);
  AdvEntry* find_adv(const AdvertisementId& id);
  const AdvEntry* find_adv(const AdvertisementId& id) const;
  void erase_adv(const AdvertisementId& id);

  const std::unordered_map<SubscriptionId, SubEntry>& prt() const {
    return prt_;
  }
  std::unordered_map<SubscriptionId, SubEntry>& prt() { return prt_; }
  const std::unordered_map<AdvertisementId, AdvEntry>& srt() const {
    return srt_;
  }
  std::unordered_map<AdvertisementId, AdvEntry>& srt() { return srt_; }

  /// Subscriptions a publication must be delivered towards. Returns the set
  /// of distinct hops, including shadow hops of in-flight movements (both
  /// configurations receive traffic until resolution).
  std::vector<Hop> hops_for_publication(const Publication& pub) const;

  /// Entries whose filter matches the publication (primary view only).
  /// Accelerated by the equality-predicate index.
  std::vector<const SubEntry*> matching_subs(const Publication& pub) const;

  /// Reference implementation of matching_subs (full scan); used by tests
  /// and benchmarks to validate and measure the index.
  std::vector<const SubEntry*> matching_subs_scan(const Publication& pub) const;

  const SubMatchIndex& match_index() const { return index_; }

  /// Advertisements a subscription filter intersects.
  std::vector<const AdvEntry*> intersecting_advs(const Filter& sub) const;

  /// Subscriptions that intersect an advertisement filter.
  std::vector<const SubEntry*> subs_intersecting(const Filter& adv) const;

  // --- movement-transaction shadow state ---

  /// Installs the post-move hop for a subscription. Creates a shadow-only
  /// entry when the broker has no existing entry for `sub`.
  void install_sub_shadow(const Subscription& sub, Hop new_hop, TxnId txn);
  void install_adv_shadow(const Advertisement& adv, Hop new_hop, TxnId txn);

  /// Commit: the shadow hop becomes primary; the pre-move hop is forgotten.
  /// No-op when the entry has no shadow for `txn`.
  void commit_shadow(const SubscriptionId& sub_id, TxnId txn);
  void commit_adv_shadow(const AdvertisementId& adv_id, TxnId txn);

  /// Abort: shadow state for `txn` is dropped; shadow-only entries vanish.
  void abort_shadow(const SubscriptionId& sub_id, TxnId txn);
  void abort_adv_shadow(const AdvertisementId& adv_id, TxnId txn);

  /// Any entry still carrying shadow state? (test/debug invariant helper)
  bool has_pending_shadows() const;

  std::size_t sub_count() const { return prt_.size(); }
  std::size_t adv_count() const { return srt_.size(); }

  std::string debug_string() const;

 private:
  std::unordered_map<SubscriptionId, SubEntry> prt_;
  std::unordered_map<AdvertisementId, AdvEntry> srt_;
  SubMatchIndex index_;
};

}  // namespace tmps
