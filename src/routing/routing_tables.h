// Per-broker content-based routing state: the Subscription Routing Table
// (SRT, advertisements used to route subscriptions) and the Publication
// Routing Table (PRT, subscriptions used to route publications), following
// the PADRES design the paper builds on.
//
// Entries support a *shadow* last hop: during a movement transaction the
// pre-move and post-move routing configurations coexist at brokers on the
// source→target path (Sec. 4.4). Publications route to both hops until the
// transaction commits (then the shadow becomes primary) or aborts (then the
// shadow is dropped) — this is what gives the routing layer its atomicity.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/ids.h"
#include "pubsub/publication.h"
#include "pubsub/subscription.h"
#include "routing/covering_index.h"
#include "routing/hop.h"
#include "routing/match_index.h"
#include "routing/routing_delta.h"

namespace tmps::obs {
class StageProfiler;
}  // namespace tmps::obs

namespace tmps {

struct SubEntry {
  Subscription sub;
  /// Link (or local client) the subscription arrived from; publications
  /// matching it are forwarded here.
  Hop lasthop;
  /// Links this subscription has been forwarded over (and not retracted).
  /// Used for unsubscription propagation and covering bookkeeping.
  std::unordered_set<Hop> forwarded_to;
  /// Post-move last hop installed by an in-flight movement transaction.
  std::optional<Hop> shadow_lasthop;
  TxnId shadow_txn = kNoTxn;
  /// True when the entry exists *only* as shadow state (the broker had no
  /// pre-move entry for this subscription); an abort removes it entirely.
  bool shadow_only = false;
};

struct AdvEntry {
  Advertisement adv;
  Hop lasthop;
  std::unordered_set<Hop> forwarded_to;
  std::optional<Hop> shadow_lasthop;
  TxnId shadow_txn = kNoTxn;
  bool shadow_only = false;
};

class RoutingTables {
 public:
  // --- mutation API ---------------------------------------------------------
  // The cohesive entry points for routing-state changes: each applies the
  // table mutation, runs the covering optimization per `policy`, and returns
  // the ordered link operations the caller must transmit (see
  // routing/routing_delta.h). Brokers and the mobility engine use these
  // instead of recomputing cover sets from the free functions of
  // routing/covering.h (now deprecated wrappers).

  /// Upserts `sub` with last hop `from` and forwards it towards every
  /// intersecting advertisement's last hop (unless quenched by covering).
  RoutingDelta add_sub(const Subscription& sub, Hop from,
                       const CoveringPolicy& policy = {});

  /// Removes `sub` if `from` still owns it (else applied=false): emits
  /// un-quench re-forwards before each link's retraction, then erases.
  RoutingDelta remove_sub(const SubscriptionId& id, Hop from,
                          const CoveringPolicy& policy = {});

  /// Upserts `adv` and floods it over `flood_links` (the broker's neighbour
  /// links; covering-quenched links are skipped), then re-forwards
  /// intersecting subscriptions over the arrival link when `from` is a
  /// broker.
  RoutingDelta add_adv(const Advertisement& adv, Hop from,
                       const std::vector<Hop>& flood_links,
                       const CoveringPolicy& policy = {});

  RoutingDelta remove_adv(const AdvertisementId& id, Hop from,
                          const CoveringPolicy& policy = {});

  // --- PRT (subscriptions) ---
  SubEntry& upsert_sub(const Subscription& sub, Hop lasthop);
  SubEntry* find_sub(const SubscriptionId& id);
  const SubEntry* find_sub(const SubscriptionId& id) const;
  void erase_sub(const SubscriptionId& id);

  // --- SRT (advertisements) ---
  AdvEntry& upsert_adv(const Advertisement& adv, Hop lasthop);
  AdvEntry* find_adv(const AdvertisementId& id);
  const AdvEntry* find_adv(const AdvertisementId& id) const;
  void erase_adv(const AdvertisementId& id);

  const std::unordered_map<SubscriptionId, SubEntry>& prt() const {
    return prt_;
  }
  std::unordered_map<SubscriptionId, SubEntry>& prt() { return prt_; }
  const std::unordered_map<AdvertisementId, AdvEntry>& srt() const {
    return srt_;
  }
  std::unordered_map<AdvertisementId, AdvEntry>& srt() { return srt_; }

  /// Subscriptions a publication must be delivered towards. Returns the set
  /// of distinct hops, including shadow hops of in-flight movements (both
  /// configurations receive traffic until resolution).
  std::vector<Hop> hops_for_publication(const Publication& pub) const;

  /// Entries whose filter matches the publication (primary view only).
  /// Accelerated by the equality-predicate index.
  std::vector<const SubEntry*> matching_subs(const Publication& pub) const;

  /// Reference implementation of matching_subs (full scan); used by tests
  /// and benchmarks to validate and measure the index.
  std::vector<const SubEntry*> matching_subs_scan(const Publication& pub) const;

  const SubMatchIndex& match_index() const { return index_; }

  /// Advertisements a subscription filter intersects. Accelerated by the
  /// covering index; results ordered by id.
  std::vector<const AdvEntry*> intersecting_advs(const Filter& sub) const;
  std::vector<const AdvEntry*> intersecting_advs_scan(const Filter& sub) const;

  /// Subscriptions that intersect an advertisement filter.
  std::vector<const SubEntry*> subs_intersecting(const Filter& adv) const;
  std::vector<const SubEntry*> subs_intersecting_scan(const Filter& adv) const;

  // --- covering queries -----------------------------------------------------
  // Index-backed (candidates from the CoveringIndex, verified exactly, output
  // ordered by id) with full-scan reference oracles (`*_scan`, preserved for
  // tests/benchmarks and as the executable specification). The scan oracles
  // use only scan helpers internally, so they never touch the index.

  /// Is `filter` (of entry `self`) covered over `link` by another
  /// subscription already forwarded over `link`?
  bool sub_covered_on_link(const SubscriptionId& self, const Filter& filter,
                           Hop link) const;
  bool sub_covered_on_link_scan(const SubscriptionId& self,
                                const Filter& filter, Hop link) const;

  /// Subscriptions currently forwarded over `link` that `filter` strictly
  /// covers — the retraction set when `self` is newly forwarded there.
  std::vector<SubEntry*> strictly_covered_subs_on_link(
      const SubscriptionId& self, const Filter& filter, Hop link);
  std::vector<SubEntry*> strictly_covered_subs_on_link_scan(
      const SubscriptionId& self, const Filter& filter, Hop link);

  /// Subscriptions quenched (at least in part) by `removed` over `link` with
  /// no remaining coverer; they must be re-forwarded before the removal
  /// propagates. A candidate must also need the link (some SRT entry with
  /// last hop `link` intersects it).
  std::vector<SubEntry*> unquenched_subs_on_link(const SubEntry& removed,
                                                 Hop link);
  std::vector<SubEntry*> unquenched_subs_on_link_scan(const SubEntry& removed,
                                                      Hop link);

  /// Advertisement analogues.
  bool adv_covered_on_link(const AdvertisementId& self, const Filter& filter,
                           Hop link) const;
  bool adv_covered_on_link_scan(const AdvertisementId& self,
                                const Filter& filter, Hop link) const;
  std::vector<AdvEntry*> strictly_covered_advs_on_link(
      const AdvertisementId& self, const Filter& filter, Hop link);
  std::vector<AdvEntry*> strictly_covered_advs_on_link_scan(
      const AdvertisementId& self, const Filter& filter, Hop link);
  std::vector<AdvEntry*> unquenched_advs_on_link(const AdvEntry& removed,
                                                 Hop link);
  std::vector<AdvEntry*> unquenched_advs_on_link_scan(const AdvEntry& removed,
                                                      Hop link);

  /// Does some advertisement with last hop `link` intersect `f`? (Then
  /// subscriptions matching `f` must be forwarded over `link`.)
  bool link_needed_for(const Filter& f, Hop link) const;
  bool link_needed_for_scan(const Filter& f, Hop link) const;

  /// A/B switch: false routes the non-`_scan` queries above through the
  /// full-table scans instead of the covering index (benchmarks, debugging).
  void set_use_cover_index(bool on) { use_cover_index_ = on; }
  bool use_cover_index() const { return use_cover_index_; }

  /// Optional stage profiler (the owning broker's): publication matching
  /// records under Stage::kMatch, covering/intersection queries under
  /// Stage::kCoverProbe. Null = no probes.
  void set_profiler(obs::StageProfiler* prof) { prof_ = prof; }
  const CoveringIndex& sub_cover_index() const { return sub_cover_; }
  const CoveringIndex& adv_cover_index() const { return adv_cover_; }

  /// Cross-checks the covering indexes against the tables: sizes agree, no
  /// dangling or duplicate filings, and every entry is a candidate of its
  /// own filter's probes. Returns violation descriptions; empty = consistent.
  std::vector<std::string> check_cover_index() const;

  // --- movement-transaction shadow state ---

  /// Installs the post-move hop for a subscription. Creates a shadow-only
  /// entry when the broker has no existing entry for `sub`.
  void install_sub_shadow(const Subscription& sub, Hop new_hop, TxnId txn);
  void install_adv_shadow(const Advertisement& adv, Hop new_hop, TxnId txn);

  /// Commit: the shadow hop becomes primary; the pre-move hop is forgotten.
  /// No-op when the entry has no shadow for `txn`.
  void commit_shadow(const SubscriptionId& sub_id, TxnId txn);
  void commit_adv_shadow(const AdvertisementId& adv_id, TxnId txn);

  /// Abort: shadow state for `txn` is dropped; shadow-only entries vanish.
  void abort_shadow(const SubscriptionId& sub_id, TxnId txn);
  void abort_adv_shadow(const AdvertisementId& adv_id, TxnId txn);

  /// Any entry still carrying shadow state? (test/debug invariant helper)
  bool has_pending_shadows() const;

  std::size_t sub_count() const { return prt_.size(); }
  std::size_t adv_count() const { return srt_.size(); }

  /// Monotonic routing-state version: bumped on every PRT/SRT mutation
  /// (upsert, erase, shadow install/commit/abort). Per-hop publication
  /// provenance records this, so a latency spike can be correlated with the
  /// reconfiguration activity around it.
  std::uint64_t version() const { return version_; }

  std::string debug_string() const;

 private:
  /// Forwards `entry` over `link` into `d`, retracting the entries it
  /// strictly covers there when the policy enables covering.
  void forward_sub(SubEntry& entry, Hop link, const CoveringPolicy& policy,
                   bool induced, RoutingDelta& d);
  void forward_adv(AdvEntry& entry, Hop link, const CoveringPolicy& policy,
                   bool induced, RoutingDelta& d);

  std::unordered_map<SubscriptionId, SubEntry> prt_;
  std::unordered_map<AdvertisementId, AdvEntry> srt_;
  SubMatchIndex index_;
  // Covering/subsumption candidate indexes over PRT and SRT filters. They
  // track table membership only (upsert/erase/shadow-install); per-link
  // forwarding state is a verification-stage predicate, so direct
  // forwarded_to mutation cannot desynchronize them.
  CoveringIndex sub_cover_;
  CoveringIndex adv_cover_;
  bool use_cover_index_ = true;
  obs::StageProfiler* prof_ = nullptr;
  std::uint64_t version_ = 0;
};

}  // namespace tmps
