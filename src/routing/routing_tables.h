// Per-broker content-based routing state: the Subscription Routing Table
// (SRT, advertisements used to route subscriptions) and the Publication
// Routing Table (PRT, subscriptions used to route publications), following
// the PADRES design the paper builds on.
//
// Entries support a *shadow* last hop: during a movement transaction the
// pre-move and post-move routing configurations coexist at brokers on the
// source→target path (Sec. 4.4). Publications route to both hops until the
// transaction commits (then the shadow becomes primary) or aborts (then the
// shadow is dropped) — this is what gives the routing layer its atomicity.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/ids.h"
#include "pubsub/publication.h"
#include "pubsub/subscription.h"
#include "routing/covering_index.h"
#include "routing/forwarding_index.h"
#include "routing/hop.h"
#include "routing/routing_delta.h"

namespace tmps::obs {
class StageProfiler;
}  // namespace tmps::obs

namespace tmps {

struct SubEntry {
  Subscription sub;
  /// Link (or local client) the subscription arrived from; publications
  /// matching it are forwarded here.
  Hop lasthop;
  /// Links this subscription has been forwarded over (and not retracted).
  /// Used for unsubscription propagation and covering bookkeeping.
  std::unordered_set<Hop> forwarded_to;
  /// Post-move last hop installed by an in-flight movement transaction.
  std::optional<Hop> shadow_lasthop;
  TxnId shadow_txn = kNoTxn;
  /// True when the entry exists *only* as shadow state (the broker had no
  /// pre-move entry for this subscription); an abort removes it entirely.
  bool shadow_only = false;
};

struct AdvEntry {
  Advertisement adv;
  Hop lasthop;
  std::unordered_set<Hop> forwarded_to;
  std::optional<Hop> shadow_lasthop;
  TxnId shadow_txn = kNoTxn;
  bool shadow_only = false;
};

/// The answer of RoutingTables::match(): everything the publish path needs
/// from one matching pass, so provenance, metrics and the fan-out loop agree
/// on a single definition.
struct MatchResult {
  /// Distinct forwarding hops, sorted (canonical order — fan-out and the
  /// simulator's message emission become deterministic regardless of index
  /// bucket layout). Includes shadow hops of in-flight movements; excludes
  /// Hop::none() and the primary hop of shadow-only entries.
  std::vector<Hop> links;
  /// PRT entries whose filter matches the publication (shadow-only entries
  /// included — they are real table entries awaiting commit). THE matched
  /// count: provenance tags, metrics and the control-plane load estimator
  /// all read this one definition.
  std::size_t matched = 0;
  /// RoutingTables::version() at match time, stamped into per-hop
  /// provenance so latency spikes correlate with reconfiguration activity.
  std::uint64_t version = 0;
};

class RoutingTables {
 public:
  // --- mutation API ---------------------------------------------------------
  // The cohesive entry points for routing-state changes: each applies the
  // table mutation, runs the covering optimization per `policy`, and returns
  // the ordered link operations the caller must transmit (see
  // routing/routing_delta.h). Brokers and the mobility engine use these
  // instead of recomputing cover sets from the free functions of
  // routing/covering.h (now deprecated wrappers).

  /// Upserts `sub` with last hop `from` and forwards it towards every
  /// intersecting advertisement's last hop (unless quenched by covering).
  RoutingDelta add_sub(const Subscription& sub, Hop from,
                       const CoveringPolicy& policy = {});

  /// Removes `sub` if `from` still owns it (else applied=false): emits
  /// un-quench re-forwards before each link's retraction, then erases.
  RoutingDelta remove_sub(const SubscriptionId& id, Hop from,
                          const CoveringPolicy& policy = {});

  /// Upserts `adv` and floods it over `flood_links` (the broker's neighbour
  /// links; covering-quenched links are skipped), then re-forwards
  /// intersecting subscriptions over the arrival link when `from` is a
  /// broker.
  RoutingDelta add_adv(const Advertisement& adv, Hop from,
                       const std::vector<Hop>& flood_links,
                       const CoveringPolicy& policy = {});

  RoutingDelta remove_adv(const AdvertisementId& id, Hop from,
                          const CoveringPolicy& policy = {});

  /// Applies one reified mutation (routing/routing_delta.h) — implemented as
  /// a one-element batch, so the forwarding-index maintenance goes through
  /// the same coalescing path as bursts.
  RoutingDelta apply(const RoutingMutation& m, const CoveringPolicy& policy = {});

  /// Applies a mutation burst under one forwarding-index batch: deltas are
  /// computed per mutation in order (covering semantics are identical to
  /// sequential apply calls), but index re-filing is coalesced per id — the
  /// amortization mobility hand-off and balancer plans rely on. Returns one
  /// delta per mutation, in order.
  std::vector<RoutingDelta> apply_batch(const std::vector<RoutingMutation>& muts,
                                        const CoveringPolicy& policy = {});

  /// Brackets direct mutation calls (upsert/erase/shadow install, or the
  /// four delta entry points) in a forwarding-index batch. Nestable.
  class MutationBatch {
   public:
    explicit MutationBatch(RoutingTables& rt) : rt_(&rt) {
      rt_->fwd_.begin_batch();
    }
    ~MutationBatch() { rt_->fwd_.end_batch(); }
    MutationBatch(const MutationBatch&) = delete;
    MutationBatch& operator=(const MutationBatch&) = delete;

   private:
    RoutingTables* rt_;
  };

  // --- PRT (subscriptions) ---
  SubEntry& upsert_sub(const Subscription& sub, Hop lasthop);
  SubEntry* find_sub(const SubscriptionId& id);
  const SubEntry* find_sub(const SubscriptionId& id) const;
  void erase_sub(const SubscriptionId& id);

  // --- SRT (advertisements) ---
  AdvEntry& upsert_adv(const Advertisement& adv, Hop lasthop);
  AdvEntry* find_adv(const AdvertisementId& id);
  const AdvEntry* find_adv(const AdvertisementId& id) const;
  void erase_adv(const AdvertisementId& id);

  const std::unordered_map<SubscriptionId, SubEntry>& prt() const {
    return prt_;
  }
  std::unordered_map<SubscriptionId, SubEntry>& prt() { return prt_; }
  const std::unordered_map<AdvertisementId, AdvEntry>& srt() const {
    return srt_;
  }
  std::unordered_map<AdvertisementId, AdvEntry>& srt() { return srt_; }

  // --- publication matching -------------------------------------------------

  /// The matching pass of the publish path: forwarding links (including
  /// shadow hops of in-flight movements — both configurations receive
  /// traffic until resolution), the matched-subscription count and the PRT
  /// version, in one result. Candidates come from the counting forwarding
  /// index and are verified exactly, so cost is O(matched + candidate
  /// overshoot), not O(subscriptions).
  MatchResult match(const Publication& pub) const;

  /// Reference implementation of match() (full PRT scan) — the executable
  /// specification, used by tests, benchmarks and the A/B switch.
  MatchResult match_scan(const Publication& pub) const;

  /// Entries whose filter matches the publication (primary view only).
  /// Accelerated by the counting forwarding index.
  std::vector<const SubEntry*> matching_subs(const Publication& pub) const;

  /// Reference implementation of matching_subs (full scan); used by tests
  /// and benchmarks to validate and measure the index.
  std::vector<const SubEntry*> matching_subs_scan(const Publication& pub) const;

  const ForwardingIndex& forward_index() const { return fwd_; }

  /// Advertisements a subscription filter intersects. Accelerated by the
  /// covering index; results ordered by id.
  std::vector<const AdvEntry*> intersecting_advs(const Filter& sub) const;
  std::vector<const AdvEntry*> intersecting_advs_scan(const Filter& sub) const;

  /// Subscriptions that intersect an advertisement filter.
  std::vector<const SubEntry*> subs_intersecting(const Filter& adv) const;
  std::vector<const SubEntry*> subs_intersecting_scan(const Filter& adv) const;

  // --- covering queries -----------------------------------------------------
  // Index-backed (candidates from the CoveringIndex, verified exactly, output
  // ordered by id) with full-scan reference oracles (`*_scan`, preserved for
  // tests/benchmarks and as the executable specification). The scan oracles
  // use only scan helpers internally, so they never touch the index.

  /// Is `filter` (of entry `self`) covered over `link` by another
  /// subscription already forwarded over `link`?
  bool sub_covered_on_link(const SubscriptionId& self, const Filter& filter,
                           Hop link) const;
  bool sub_covered_on_link_scan(const SubscriptionId& self,
                                const Filter& filter, Hop link) const;

  /// Subscriptions currently forwarded over `link` that `filter` strictly
  /// covers — the retraction set when `self` is newly forwarded there.
  std::vector<SubEntry*> strictly_covered_subs_on_link(
      const SubscriptionId& self, const Filter& filter, Hop link);
  std::vector<SubEntry*> strictly_covered_subs_on_link_scan(
      const SubscriptionId& self, const Filter& filter, Hop link);

  /// Subscriptions quenched (at least in part) by `removed` over `link` with
  /// no remaining coverer; they must be re-forwarded before the removal
  /// propagates. A candidate must also need the link (some SRT entry with
  /// last hop `link` intersects it).
  std::vector<SubEntry*> unquenched_subs_on_link(const SubEntry& removed,
                                                 Hop link);
  std::vector<SubEntry*> unquenched_subs_on_link_scan(const SubEntry& removed,
                                                      Hop link);

  /// Advertisement analogues.
  bool adv_covered_on_link(const AdvertisementId& self, const Filter& filter,
                           Hop link) const;
  bool adv_covered_on_link_scan(const AdvertisementId& self,
                                const Filter& filter, Hop link) const;
  std::vector<AdvEntry*> strictly_covered_advs_on_link(
      const AdvertisementId& self, const Filter& filter, Hop link);
  std::vector<AdvEntry*> strictly_covered_advs_on_link_scan(
      const AdvertisementId& self, const Filter& filter, Hop link);
  std::vector<AdvEntry*> unquenched_advs_on_link(const AdvEntry& removed,
                                                 Hop link);
  std::vector<AdvEntry*> unquenched_advs_on_link_scan(const AdvEntry& removed,
                                                      Hop link);

  /// Does some advertisement with last hop `link` intersect `f`? (Then
  /// subscriptions matching `f` must be forwarded over `link`.)
  bool link_needed_for(const Filter& f, Hop link) const;
  bool link_needed_for_scan(const Filter& f, Hop link) const;

  /// A/B switch: false routes the non-`_scan` queries above through the
  /// full-table scans instead of the covering index (benchmarks, debugging).
  void set_use_cover_index(bool on) { use_cover_index_ = on; }
  bool use_cover_index() const { return use_cover_index_; }

  /// A/B switch for publication matching: false routes match() and
  /// matching_subs through the full-PRT scans instead of the forwarding
  /// index.
  void set_use_forward_index(bool on) { use_forward_index_ = on; }
  bool use_forward_index() const { return use_forward_index_; }

  /// Optional stage profiler (the owning broker's): publication matching
  /// records under Stage::kMatch, covering/intersection queries under
  /// Stage::kCoverProbe. Null = no probes.
  void set_profiler(obs::StageProfiler* prof) { prof_ = prof; }
  const CoveringIndex& sub_cover_index() const { return sub_cover_; }
  const CoveringIndex& adv_cover_index() const { return adv_cover_; }

  /// Cross-checks the covering indexes against the tables: sizes agree, no
  /// dangling or duplicate filings, and every entry is a candidate of its
  /// own filter's probes. Returns violation descriptions; empty = consistent.
  std::vector<std::string> check_cover_index() const;

  /// Cross-checks the forwarding index against the PRT: sizes agree, no
  /// dangling/duplicate filings, the index's own structural invariants hold,
  /// and every entry is a candidate for a witness publication drawn from its
  /// own filter (when one is constructible). Exactness — match() ≡
  /// match_scan() — is the property test's job.
  std::vector<std::string> check_forward_index() const;

  // --- movement-transaction shadow state ---

  /// Installs the post-move hop for a subscription. Creates a shadow-only
  /// entry when the broker has no existing entry for `sub`.
  void install_sub_shadow(const Subscription& sub, Hop new_hop, TxnId txn);
  void install_adv_shadow(const Advertisement& adv, Hop new_hop, TxnId txn);

  /// Commit: the shadow hop becomes primary; the pre-move hop is forgotten.
  /// No-op when the entry has no shadow for `txn`.
  void commit_shadow(const SubscriptionId& sub_id, TxnId txn);
  void commit_adv_shadow(const AdvertisementId& adv_id, TxnId txn);

  /// Abort: shadow state for `txn` is dropped; shadow-only entries vanish.
  void abort_shadow(const SubscriptionId& sub_id, TxnId txn);
  void abort_adv_shadow(const AdvertisementId& adv_id, TxnId txn);

  /// Any entry still carrying shadow state? (test/debug invariant helper)
  bool has_pending_shadows() const;

  std::size_t sub_count() const { return prt_.size(); }
  std::size_t adv_count() const { return srt_.size(); }

  /// Monotonic routing-state version: bumped on every PRT/SRT mutation
  /// (upsert, erase, shadow install/commit/abort). Per-hop publication
  /// provenance records this, so a latency spike can be correlated with the
  /// reconfiguration activity around it.
  std::uint64_t version() const { return version_; }

  std::string debug_string() const;

 private:
  /// Forwards `entry` over `link` into `d`, retracting the entries it
  /// strictly covers there when the policy enables covering.
  void forward_sub(SubEntry& entry, Hop link, const CoveringPolicy& policy,
                   bool induced, RoutingDelta& d);
  void forward_adv(AdvEntry& entry, Hop link, const CoveringPolicy& policy,
                   bool induced, RoutingDelta& d);

  /// Dispatches a reified mutation to the matching entry point.
  RoutingDelta dispatch(const RoutingMutation& m, const CoveringPolicy& policy);

  /// Folds `e` into `r` when its filter matches `pub` (shared by match and
  /// match_scan, so index and oracle use the same collection rules).
  static void collect_match(const SubEntry& e, const Publication& pub,
                            MatchResult& r);

  std::unordered_map<SubscriptionId, SubEntry> prt_;
  std::unordered_map<AdvertisementId, AdvEntry> srt_;
  // Counting-algorithm publication matcher over PRT filters (membership
  // only, like the covering indexes below).
  ForwardingIndex fwd_;
  // Covering/subsumption candidate indexes over PRT and SRT filters. They
  // track table membership only (upsert/erase/shadow-install); per-link
  // forwarding state is a verification-stage predicate, so direct
  // forwarded_to mutation cannot desynchronize them.
  CoveringIndex sub_cover_;
  CoveringIndex adv_cover_;
  bool use_cover_index_ = true;
  bool use_forward_index_ = true;
  obs::StageProfiler* prof_ = nullptr;
  std::uint64_t version_ = 0;
  /// Candidate scratch reused across match() calls (single-threaded).
  mutable std::vector<SubscriptionId> match_scratch_;
};

}  // namespace tmps
