// Equality-predicate pre-filter index over subscriptions: the standard
// first stage of a content-based matching engine (cf. the counting/
// predicate-index algorithms of Fabret et al., which PADRES builds on).
//
// Every subscription with at least one equality predicate is filed under
// one (attribute, value) bucket; subscriptions without any equality
// predicate fall back to a scan list. For a publication, the candidate set
// is the union of the buckets probed with the publication's own
// (attribute, value) pairs plus the scan list — sound and complete, because
// a subscription filed under (A, v) can only match publications carrying
// A = v. Candidates are then verified with a full filter match.
//
// Bucket choice is adaptive: among a subscription's equality predicates the
// currently smallest bucket is chosen, so low-selectivity attributes (e.g.
// a constant "class" attribute) stop attracting new entries once they grow.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "pubsub/filter.h"
#include "pubsub/publication.h"

namespace tmps {

class SubMatchIndex {
 public:
  void insert(const SubscriptionId& id, const Filter& filter);
  void erase(const SubscriptionId& id, const Filter& filter);

  /// Appends all candidate subscription ids for `pub` (a superset of the
  /// true matches; may contain duplicates across buckets).
  void candidates(const Publication& pub,
                  std::vector<SubscriptionId>& out) const;

  std::size_t indexed_count() const { return indexed_; }
  std::size_t scan_count() const { return scan_.size(); }
  std::size_t bucket_count() const { return buckets_.size(); }

 private:
  static std::string key_of(const std::string& attr, const Value& v);
  /// The equality predicate to file `filter` under, or nullptr.
  const Predicate* pick_bucket(const Filter& filter) const;

  std::unordered_map<std::string, std::vector<SubscriptionId>> buckets_;
  std::vector<SubscriptionId> scan_;
  std::size_t indexed_ = 0;
};

}  // namespace tmps
