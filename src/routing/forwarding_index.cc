#include "routing/forwarding_index.h"

#include <algorithm>
#include <unordered_set>

namespace tmps {

namespace {

// Swap-removes one occurrence of `slot` from `slots`.
void erase_slot(std::vector<std::uint32_t>& slots, std::uint32_t slot) {
  const auto it = std::find(slots.begin(), slots.end(), slot);
  if (it == slots.end()) return;
  *it = slots.back();
  slots.pop_back();
}

}  // namespace

void ForwardingIndex::insert(const SubscriptionId& id, const Filter& filter) {
  if (batch_depth_ > 0) {
    pending_.push_back({/*is_insert=*/true, id, filter});
    return;
  }
  do_insert(id, filter);
}

void ForwardingIndex::erase(const SubscriptionId& id) {
  if (batch_depth_ > 0) {
    pending_.push_back({/*is_insert=*/false, id, Filter{}});
    return;
  }
  do_erase(id);
}

void ForwardingIndex::end_batch() {
  if (batch_depth_ == 0) return;
  if (--batch_depth_ > 0) return;
  // Per-id coalescing: only an id's final queued state is filed. No queries
  // depend on intermediate states (the batch brackets a mutation burst), so
  // an erase-then-reinsert of a moving client's profile files each id once.
  std::unordered_map<SubscriptionId, std::size_t> last;
  for (std::size_t i = 0; i < pending_.size(); ++i) last[pending_[i].id] = i;
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    if (last[pending_[i].id] != i) continue;
    const Pending& p = pending_[i];
    if (p.is_insert) {
      do_insert(p.id, p.filter);
    } else {
      do_erase(p.id);
    }
  }
  pending_.clear();
}

void ForwardingIndex::do_insert(const SubscriptionId& id,
                                const Filter& filter) {
  do_erase(id);  // re-filing an id replaces its previous filing

  std::uint32_t slot;
  if (!free_.empty()) {
    slot = free_.back();
    free_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(recs_.size());
    recs_.emplace_back();
  }
  Rec& r = recs_[slot];
  r.id = id;
  r.filings.clear();
  r.epoch = 0;
  r.hits = 0;
  slot_of_.emplace(id, slot);

  if (!filter.satisfiable()) {
    r.where = Where::kNowhere;
    r.slots = 0;
    ++unsat_;
    return;
  }
  if (filter.empty()) {
    r.where = Where::kAlways;
    r.slots = 0;
    always_.push_back(slot);
    return;
  }

  // Anchor: one slot in the adaptively-smallest equality bucket among the
  // filter's singleton-pinned attributes (ties by attribute order — the
  // constraints map iterates in order).
  const std::string* best_attr = nullptr;
  Value best_value;
  std::size_t best_size = 0;
  for (const auto& [attr, c] : filter.constraints()) {
    const auto v = c.singleton_value();
    if (!v) continue;
    std::size_t sz = 0;
    if (const auto ait = eq_.find(attr); ait != eq_.end()) {
      if (const auto vit = ait->second.find(*v); vit != ait->second.end()) {
        sz = vit->second.size();
      }
    }
    if (best_attr == nullptr || sz < best_size) {
      best_attr = &attr;
      best_value = *v;
      best_size = sz;
    }
  }
  if (best_attr != nullptr) {
    eq_[*best_attr][best_value].push_back(slot);
    r.where = Where::kAnchor;
    r.slots = 1;
    r.filings.push_back({Filing::Kind::kEq, false, *best_attr, best_value});
    ++anchored_;
    return;
  }

  // Counting: one slot per interval bound (or per bound-free presence
  // requirement) of each constrained attribute.
  r.where = Where::kCounting;
  std::uint16_t slots = 0;
  for (const auto& [attr, c] : filter.constraints()) {
    bool bounded = false;
    if (c.lower_bound()) {
      BoundPosting& bp = lower_[attr][*c.lower_bound()];
      (c.lower_open() ? bp.open : bp.closed).push_back(slot);
      r.filings.push_back(
          {Filing::Kind::kLower, c.lower_open(), attr, *c.lower_bound()});
      ++slots;
      bounded = true;
    }
    if (c.upper_bound()) {
      BoundPosting& bp = upper_[attr][*c.upper_bound()];
      (c.upper_open() ? bp.open : bp.closed).push_back(slot);
      r.filings.push_back(
          {Filing::Kind::kUpper, c.upper_open(), attr, *c.upper_bound()});
      ++slots;
      bounded = true;
    }
    if (!bounded) {
      // isPresent / exclusions-only / domain-only: any value of the
      // attribute satisfies the slot (exactness restored at verification).
      present_[attr].push_back(slot);
      r.filings.push_back({Filing::Kind::kPresent, false, attr, Value{}});
      ++slots;
    }
  }
  r.slots = slots;  // >= 1: the filter is non-empty
  ++counting_;
}

void ForwardingIndex::do_erase(const SubscriptionId& id) {
  const auto it = slot_of_.find(id);
  if (it == slot_of_.end()) return;
  const std::uint32_t slot = it->second;
  Rec& r = recs_[slot];
  switch (r.where) {
    case Where::kNowhere:
      --unsat_;
      break;
    case Where::kAlways:
      erase_slot(always_, slot);
      break;
    case Where::kAnchor:
      --anchored_;
      break;
    case Where::kCounting:
      --counting_;
      break;
  }
  for (const Filing& f : r.filings) {
    switch (f.kind) {
      case Filing::Kind::kEq: {
        const auto ait = eq_.find(f.attr);
        if (ait == eq_.end()) break;
        const auto vit = ait->second.find(f.value);
        if (vit == ait->second.end()) break;
        erase_slot(vit->second, slot);
        if (vit->second.empty()) ait->second.erase(vit);
        if (ait->second.empty()) eq_.erase(ait);
        break;
      }
      case Filing::Kind::kLower:
      case Filing::Kind::kUpper: {
        auto& lists = f.kind == Filing::Kind::kLower ? lower_ : upper_;
        const auto ait = lists.find(f.attr);
        if (ait == lists.end()) break;
        const auto vit = ait->second.find(f.value);
        if (vit == ait->second.end()) break;
        erase_slot(f.open ? vit->second.open : vit->second.closed, slot);
        if (vit->second.empty()) ait->second.erase(vit);
        if (ait->second.empty()) lists.erase(ait);
        break;
      }
      case Filing::Kind::kPresent: {
        const auto ait = present_.find(f.attr);
        if (ait == present_.end()) break;
        erase_slot(ait->second, slot);
        if (ait->second.empty()) present_.erase(ait);
        break;
      }
    }
  }
  r.filings.clear();
  r.where = Where::kNowhere;
  r.slots = 0;
  slot_of_.erase(it);
  free_.push_back(slot);
}

void ForwardingIndex::hit(std::uint32_t slot,
                          std::vector<SubscriptionId>& out) const {
  const Rec& r = recs_[slot];
  if (r.epoch != epoch_) {
    r.epoch = epoch_;
    r.hits = 0;
  }
  if (++r.hits == r.slots) out.push_back(r.id);
}

void ForwardingIndex::candidates(const Publication& pub,
                                 std::vector<SubscriptionId>& out) const {
  ++epoch_;
  for (const auto& [attr, v] : pub.attrs()) {
    if (const auto ait = eq_.find(attr); ait != eq_.end()) {
      if (const auto vit = ait->second.find(v); vit != ait->second.end()) {
        for (const std::uint32_t s : vit->second) hit(s, out);
      }
    }
    if (const auto ait = lower_.find(attr); ait != lower_.end()) {
      // Lower bounds lo <= v satisfy v >= lo; lo == v only when closed.
      for (auto bit = ait->second.begin();
           bit != ait->second.end() && !(v < bit->first); ++bit) {
        for (const std::uint32_t s : bit->second.closed) hit(s, out);
        if (bit->first < v) {
          for (const std::uint32_t s : bit->second.open) hit(s, out);
        }
      }
    }
    if (const auto ait = upper_.find(attr); ait != upper_.end()) {
      // Upper bounds hi >= v satisfy v <= hi; hi == v only when closed.
      for (auto bit = ait->second.lower_bound(v); bit != ait->second.end();
           ++bit) {
        for (const std::uint32_t s : bit->second.closed) hit(s, out);
        if (v < bit->first) {
          for (const std::uint32_t s : bit->second.open) hit(s, out);
        }
      }
    }
    if (const auto ait = present_.find(attr); ait != present_.end()) {
      for (const std::uint32_t s : ait->second) hit(s, out);
    }
  }
  for (const std::uint32_t s : always_) out.push_back(recs_[s].id);

  if (!pending_.empty()) {
    // Open batch: the postings are stale, so the probe above can miss ids
    // whose insert is still queued. Conservatively append every
    // pending-insert id not already emitted (duplicate-free so callers can
    // count verified matches). Cold path: batches bracket mutation bursts,
    // not queries.
    std::unordered_set<SubscriptionId> seen(out.begin(), out.end());
    for (const Pending& p : pending_) {
      if (p.is_insert && seen.insert(p.id).second) out.push_back(p.id);
    }
  }
}

void ForwardingIndex::all_ids(std::vector<SubscriptionId>& out) const {
  out.reserve(out.size() + slot_of_.size());
  for (const auto& [id, slot] : slot_of_) out.push_back(id);
}

std::vector<std::string> ForwardingIndex::check() const {
  std::vector<std::string> out;
  if (batch_depth_ > 0 || !pending_.empty()) {
    out.push_back("forward index checked with an open mutation batch (" +
                  std::to_string(pending_.size()) + " pending ops)");
    return out;
  }
  // Every live rec's filings must be present, and the slot target must equal
  // the filing count (one slot per filing by construction).
  std::size_t expected_postings = 0;
  for (const auto& [id, slot] : slot_of_) {
    if (slot >= recs_.size()) {
      out.push_back("slot of " + to_string(id) + " out of range");
      continue;
    }
    const Rec& r = recs_[slot];
    if (!(r.id == id)) {
      out.push_back("rec of " + to_string(id) + " holds id " +
                    to_string(r.id));
    }
    const std::uint16_t want_slots =
        r.where == Where::kAnchor || r.where == Where::kCounting
            ? static_cast<std::uint16_t>(r.filings.size())
            : 0;
    if (r.slots != want_slots) {
      out.push_back("rec of " + to_string(id) + " slot target " +
                    std::to_string(r.slots) + " != filing count " +
                    std::to_string(want_slots));
    }
    if (r.where == Where::kAlways) {
      if (std::count(always_.begin(), always_.end(), slot) != 1) {
        out.push_back("always-matching rec of " + to_string(id) +
                      " not filed exactly once in the always list");
      }
      ++expected_postings;  // counted below as one always posting
    }
    expected_postings += r.filings.size();
    for (const Filing& f : r.filings) {
      const auto holds = [&](const Slots& slots) {
        return std::count(slots.begin(), slots.end(), slot) == 1;
      };
      bool ok = false;
      switch (f.kind) {
        case Filing::Kind::kEq: {
          const auto ait = eq_.find(f.attr);
          if (ait != eq_.end()) {
            const auto vit = ait->second.find(f.value);
            ok = vit != ait->second.end() && holds(vit->second);
          }
          break;
        }
        case Filing::Kind::kLower:
        case Filing::Kind::kUpper: {
          const auto& lists = f.kind == Filing::Kind::kLower ? lower_ : upper_;
          const auto ait = lists.find(f.attr);
          if (ait != lists.end()) {
            const auto vit = ait->second.find(f.value);
            ok = vit != ait->second.end() &&
                 holds(f.open ? vit->second.open : vit->second.closed);
          }
          break;
        }
        case Filing::Kind::kPresent: {
          const auto ait = present_.find(f.attr);
          ok = ait != present_.end() && holds(ait->second);
          break;
        }
      }
      if (!ok) {
        out.push_back("filing of " + to_string(id) + " on attribute '" +
                      f.attr + "' missing from its posting list");
      }
    }
  }
  // No posting may reference a dead or foreign slot, and the total posting
  // count must equal the filings accounted above (no stray entries).
  std::size_t total_postings = 0;
  const auto sweep = [&](const Slots& slots, const char* what) {
    total_postings += slots.size();
    for (const std::uint32_t s : slots) {
      const auto it = s < recs_.size() ? slot_of_.find(recs_[s].id)
                                       : slot_of_.end();
      if (it == slot_of_.end() || it->second != s) {
        out.push_back(std::string(what) + " posting references dead slot " +
                      std::to_string(s));
      }
    }
  };
  for (const auto& [attr, el] : eq_) {
    for (const auto& [v, slots] : el) sweep(slots, "equality");
  }
  for (const auto& [attr, bl] : lower_) {
    for (const auto& [v, bp] : bl) {
      sweep(bp.closed, "lower-bound");
      sweep(bp.open, "lower-bound");
    }
  }
  for (const auto& [attr, bl] : upper_) {
    for (const auto& [v, bp] : bl) {
      sweep(bp.closed, "upper-bound");
      sweep(bp.open, "upper-bound");
    }
  }
  for (const auto& [attr, slots] : present_) sweep(slots, "presence");
  sweep(always_, "always");
  if (total_postings != expected_postings) {
    out.push_back("posting entries " + std::to_string(total_postings) +
                  " != recorded filings " +
                  std::to_string(expected_postings));
  }
  if (anchored_ + counting_ + always_.size() + unsat_ != slot_of_.size()) {
    out.push_back("filing-class counters do not sum to the table size");
  }
  return out;
}

}  // namespace tmps
