#include "routing/routing_tables.h"

#include <algorithm>

#include "obs/profiler.h"

namespace tmps {

SubEntry& RoutingTables::upsert_sub(const Subscription& sub, Hop lasthop) {
  ++version_;
  auto [it, inserted] = prt_.try_emplace(sub.id);
  if (!inserted) {
    sub_cover_.erase(sub.id, it->second.sub.filter);
  }
  it->second.sub = sub;
  it->second.lasthop = lasthop;
  if (inserted) it->second.shadow_only = false;
  fwd_.insert(sub.id, sub.filter);  // re-files on upsert
  sub_cover_.insert(sub.id, sub.filter);
  return it->second;
}

SubEntry* RoutingTables::find_sub(const SubscriptionId& id) {
  auto it = prt_.find(id);
  return it == prt_.end() ? nullptr : &it->second;
}

const SubEntry* RoutingTables::find_sub(const SubscriptionId& id) const {
  auto it = prt_.find(id);
  return it == prt_.end() ? nullptr : &it->second;
}

void RoutingTables::erase_sub(const SubscriptionId& id) {
  auto it = prt_.find(id);
  if (it == prt_.end()) return;
  ++version_;
  fwd_.erase(id);
  sub_cover_.erase(id, it->second.sub.filter);
  prt_.erase(it);
}

AdvEntry& RoutingTables::upsert_adv(const Advertisement& adv, Hop lasthop) {
  ++version_;
  auto [it, inserted] = srt_.try_emplace(adv.id);
  if (!inserted) adv_cover_.erase(adv.id, it->second.adv.filter);
  it->second.adv = adv;
  it->second.lasthop = lasthop;
  if (inserted) it->second.shadow_only = false;
  adv_cover_.insert(adv.id, adv.filter);
  return it->second;
}

AdvEntry* RoutingTables::find_adv(const AdvertisementId& id) {
  auto it = srt_.find(id);
  return it == srt_.end() ? nullptr : &it->second;
}

const AdvEntry* RoutingTables::find_adv(const AdvertisementId& id) const {
  auto it = srt_.find(id);
  return it == srt_.end() ? nullptr : &it->second;
}

void RoutingTables::erase_adv(const AdvertisementId& id) {
  auto it = srt_.find(id);
  if (it == srt_.end()) return;
  ++version_;
  adv_cover_.erase(id, it->second.adv.filter);
  srt_.erase(it);
}

void RoutingTables::collect_match(const SubEntry& e, const Publication& pub,
                                  MatchResult& r) {
  if (!e.sub.filter.matches(pub)) return;
  ++r.matched;
  // Shadow-only entries have no live primary hop; skip Hop::none().
  if (!e.shadow_only && !e.lasthop.is_none()) r.links.push_back(e.lasthop);
  if (e.shadow_lasthop && !e.shadow_lasthop->is_none()) {
    r.links.push_back(*e.shadow_lasthop);
  }
}

namespace {

/// Canonical link order: sorted and deduplicated, so fan-out is
/// deterministic regardless of the candidate order the index produced.
void finalize_links(std::vector<Hop>& links) {
  std::sort(links.begin(), links.end());
  links.erase(std::unique(links.begin(), links.end()), links.end());
}

}  // namespace

MatchResult RoutingTables::match(const Publication& pub) const {
  TMPS_PROF_STAGE(prof_, obs::Stage::kMatch);
  if (!use_forward_index_) return match_scan(pub);
  MatchResult r;
  r.version = version_;
  match_scratch_.clear();
  fwd_.candidates(pub, match_scratch_);
  for (const auto& id : match_scratch_) {
    const auto it = prt_.find(id);
    if (it == prt_.end()) continue;
    collect_match(it->second, pub, r);
  }
  finalize_links(r.links);
  return r;
}

MatchResult RoutingTables::match_scan(const Publication& pub) const {
  MatchResult r;
  r.version = version_;
  for (const auto& [id, e] : prt_) collect_match(e, pub, r);
  finalize_links(r.links);
  return r;
}

std::vector<const SubEntry*> RoutingTables::matching_subs(
    const Publication& pub) const {
  if (!use_forward_index_) return matching_subs_scan(pub);
  std::vector<const SubEntry*> out;
  std::vector<SubscriptionId> cands;
  fwd_.candidates(pub, cands);
  for (const auto& id : cands) {
    const auto it = prt_.find(id);
    if (it != prt_.end() && it->second.sub.filter.matches(pub)) {
      out.push_back(&it->second);
    }
  }
  return out;
}

std::vector<const SubEntry*> RoutingTables::matching_subs_scan(
    const Publication& pub) const {
  std::vector<const SubEntry*> out;
  for (const auto& [id, e] : prt_) {
    if (e.sub.filter.matches(pub)) out.push_back(&e);
  }
  return out;
}

namespace {

/// Deterministic output order for index-backed queries: candidate order
/// depends on bucket layout, so verified results are sorted by id.
void sort_ids(std::vector<EntityId>& ids) { std::sort(ids.begin(), ids.end()); }

}  // namespace

std::vector<const AdvEntry*> RoutingTables::intersecting_advs(
    const Filter& sub) const {
  TMPS_PROF_STAGE(prof_, obs::Stage::kCoverProbe);
  if (!use_cover_index_) return intersecting_advs_scan(sub);
  std::vector<EntityId> cands;
  adv_cover_.adv_intersect_candidates(sub, cands);
  sort_ids(cands);
  std::vector<const AdvEntry*> out;
  for (const auto& id : cands) {
    const auto it = srt_.find(id);
    if (it == srt_.end()) continue;
    if (sub.intersects_advertisement(it->second.adv.filter)) {
      out.push_back(&it->second);
    }
  }
  return out;
}

std::vector<const AdvEntry*> RoutingTables::intersecting_advs_scan(
    const Filter& sub) const {
  std::vector<const AdvEntry*> out;
  for (const auto& [id, e] : srt_) {
    if (sub.intersects_advertisement(e.adv.filter)) out.push_back(&e);
  }
  return out;
}

std::vector<const SubEntry*> RoutingTables::subs_intersecting(
    const Filter& adv) const {
  TMPS_PROF_STAGE(prof_, obs::Stage::kCoverProbe);
  if (!use_cover_index_) return subs_intersecting_scan(adv);
  std::vector<EntityId> cands;
  sub_cover_.sub_intersect_candidates(adv, cands);
  sort_ids(cands);
  std::vector<const SubEntry*> out;
  for (const auto& id : cands) {
    const auto it = prt_.find(id);
    if (it == prt_.end()) continue;
    if (it->second.sub.filter.intersects_advertisement(adv)) {
      out.push_back(&it->second);
    }
  }
  return out;
}

std::vector<const SubEntry*> RoutingTables::subs_intersecting_scan(
    const Filter& adv) const {
  std::vector<const SubEntry*> out;
  for (const auto& [id, e] : prt_) {
    if (e.sub.filter.intersects_advertisement(adv)) out.push_back(&e);
  }
  return out;
}

// --- covering queries ---------------------------------------------------------

bool RoutingTables::sub_covered_on_link(const SubscriptionId& self,
                                        const Filter& filter, Hop link) const {
  TMPS_PROF_STAGE(prof_, obs::Stage::kCoverProbe);
  if (!use_cover_index_) return sub_covered_on_link_scan(self, filter, link);
  std::vector<EntityId> cands;
  sub_cover_.coverer_candidates(filter, cands);
  for (const auto& id : cands) {
    if (id == self) continue;
    const auto it = prt_.find(id);
    if (it == prt_.end()) continue;
    const SubEntry& e = it->second;
    if (!e.forwarded_to.contains(link)) continue;
    if (e.sub.filter.covers(filter)) return true;
  }
  return false;
}

bool RoutingTables::sub_covered_on_link_scan(const SubscriptionId& self,
                                             const Filter& filter,
                                             Hop link) const {
  for (const auto& [id, e] : prt_) {
    if (id == self) continue;
    if (!e.forwarded_to.contains(link)) continue;
    if (e.sub.filter.covers(filter)) return true;
  }
  return false;
}

std::vector<SubEntry*> RoutingTables::strictly_covered_subs_on_link(
    const SubscriptionId& self, const Filter& filter, Hop link) {
  TMPS_PROF_STAGE(prof_, obs::Stage::kCoverProbe);
  if (!use_cover_index_) {
    return strictly_covered_subs_on_link_scan(self, filter, link);
  }
  std::vector<EntityId> cands;
  sub_cover_.covered_candidates(filter, cands);
  sort_ids(cands);
  std::vector<SubEntry*> out;
  for (const auto& id : cands) {
    if (id == self) continue;
    SubEntry* e = find_sub(id);
    if (!e || !e->forwarded_to.contains(link)) continue;
    if (filter.covers(e->sub.filter) && !e->sub.filter.covers(filter)) {
      out.push_back(e);
    }
  }
  return out;
}

std::vector<SubEntry*> RoutingTables::strictly_covered_subs_on_link_scan(
    const SubscriptionId& self, const Filter& filter, Hop link) {
  std::vector<SubEntry*> out;
  for (auto& [id, e] : prt_) {
    if (id == self) continue;
    if (!e.forwarded_to.contains(link)) continue;
    if (filter.covers(e.sub.filter) && !e.sub.filter.covers(filter)) {
      out.push_back(&e);
    }
  }
  return out;
}

std::vector<SubEntry*> RoutingTables::unquenched_subs_on_link(
    const SubEntry& removed, Hop link) {
  if (!use_cover_index_) return unquenched_subs_on_link_scan(removed, link);
  std::vector<EntityId> cands;
  sub_cover_.covered_candidates(removed.sub.filter, cands);
  sort_ids(cands);
  std::vector<SubEntry*> out;
  for (const auto& id : cands) {
    if (id == removed.sub.id) continue;
    SubEntry* e = find_sub(id);
    if (!e) continue;
    if (e->shadow_only) continue;  // not yet live at this broker
    if (e->lasthop == link) continue;
    if (e->forwarded_to.contains(link)) continue;
    if (!removed.sub.filter.covers(e->sub.filter)) continue;
    if (!link_needed_for(e->sub.filter, link)) continue;
    // A remaining forwarded subscription may still cover it.
    if (sub_covered_on_link(id, e->sub.filter, link)) continue;
    out.push_back(e);
  }
  return out;
}

std::vector<SubEntry*> RoutingTables::unquenched_subs_on_link_scan(
    const SubEntry& removed, Hop link) {
  std::vector<SubEntry*> out;
  for (auto& [id, e] : prt_) {
    if (id == removed.sub.id) continue;
    if (e.shadow_only) continue;
    if (e.lasthop == link) continue;
    if (e.forwarded_to.contains(link)) continue;
    if (!removed.sub.filter.covers(e.sub.filter)) continue;
    if (!link_needed_for_scan(e.sub.filter, link)) continue;
    if (sub_covered_on_link_scan(id, e.sub.filter, link)) continue;
    out.push_back(&e);
  }
  return out;
}

bool RoutingTables::adv_covered_on_link(const AdvertisementId& self,
                                        const Filter& filter, Hop link) const {
  TMPS_PROF_STAGE(prof_, obs::Stage::kCoverProbe);
  if (!use_cover_index_) return adv_covered_on_link_scan(self, filter, link);
  std::vector<EntityId> cands;
  adv_cover_.coverer_candidates(filter, cands);
  for (const auto& id : cands) {
    if (id == self) continue;
    const auto it = srt_.find(id);
    if (it == srt_.end()) continue;
    const AdvEntry& e = it->second;
    if (!e.forwarded_to.contains(link)) continue;
    if (e.adv.filter.covers(filter)) return true;
  }
  return false;
}

bool RoutingTables::adv_covered_on_link_scan(const AdvertisementId& self,
                                             const Filter& filter,
                                             Hop link) const {
  for (const auto& [id, e] : srt_) {
    if (id == self) continue;
    if (!e.forwarded_to.contains(link)) continue;
    if (e.adv.filter.covers(filter)) return true;
  }
  return false;
}

std::vector<AdvEntry*> RoutingTables::strictly_covered_advs_on_link(
    const AdvertisementId& self, const Filter& filter, Hop link) {
  TMPS_PROF_STAGE(prof_, obs::Stage::kCoverProbe);
  if (!use_cover_index_) {
    return strictly_covered_advs_on_link_scan(self, filter, link);
  }
  std::vector<EntityId> cands;
  adv_cover_.covered_candidates(filter, cands);
  sort_ids(cands);
  std::vector<AdvEntry*> out;
  for (const auto& id : cands) {
    if (id == self) continue;
    AdvEntry* e = find_adv(id);
    if (!e || !e->forwarded_to.contains(link)) continue;
    if (filter.covers(e->adv.filter) && !e->adv.filter.covers(filter)) {
      out.push_back(e);
    }
  }
  return out;
}

std::vector<AdvEntry*> RoutingTables::strictly_covered_advs_on_link_scan(
    const AdvertisementId& self, const Filter& filter, Hop link) {
  std::vector<AdvEntry*> out;
  for (auto& [id, e] : srt_) {
    if (id == self) continue;
    if (!e.forwarded_to.contains(link)) continue;
    if (filter.covers(e.adv.filter) && !e.adv.filter.covers(filter)) {
      out.push_back(&e);
    }
  }
  return out;
}

std::vector<AdvEntry*> RoutingTables::unquenched_advs_on_link(
    const AdvEntry& removed, Hop link) {
  if (!use_cover_index_) return unquenched_advs_on_link_scan(removed, link);
  std::vector<EntityId> cands;
  adv_cover_.covered_candidates(removed.adv.filter, cands);
  sort_ids(cands);
  std::vector<AdvEntry*> out;
  for (const auto& id : cands) {
    if (id == removed.adv.id) continue;
    AdvEntry* e = find_adv(id);
    if (!e) continue;
    if (e->shadow_only) continue;
    if (e->lasthop == link) continue;
    if (e->forwarded_to.contains(link)) continue;
    if (!removed.adv.filter.covers(e->adv.filter)) continue;
    if (adv_covered_on_link(id, e->adv.filter, link)) continue;
    out.push_back(e);
  }
  return out;
}

std::vector<AdvEntry*> RoutingTables::unquenched_advs_on_link_scan(
    const AdvEntry& removed, Hop link) {
  std::vector<AdvEntry*> out;
  for (auto& [id, e] : srt_) {
    if (id == removed.adv.id) continue;
    if (e.shadow_only) continue;
    if (e.lasthop == link) continue;
    if (e.forwarded_to.contains(link)) continue;
    if (!removed.adv.filter.covers(e.adv.filter)) continue;
    if (adv_covered_on_link_scan(id, e.adv.filter, link)) continue;
    out.push_back(&e);
  }
  return out;
}

bool RoutingTables::link_needed_for(const Filter& f, Hop link) const {
  if (!use_cover_index_) return link_needed_for_scan(f, link);
  std::vector<EntityId> cands;
  adv_cover_.adv_intersect_candidates(f, cands);
  for (const auto& id : cands) {
    const auto it = srt_.find(id);
    if (it == srt_.end()) continue;
    const AdvEntry& a = it->second;
    if (a.lasthop == link && f.intersects_advertisement(a.adv.filter)) {
      return true;
    }
  }
  return false;
}

bool RoutingTables::link_needed_for_scan(const Filter& f, Hop link) const {
  for (const auto& [id, a] : srt_) {
    if (a.lasthop == link && f.intersects_advertisement(a.adv.filter)) {
      return true;
    }
  }
  return false;
}

// --- mutation API -------------------------------------------------------------

void RoutingTables::forward_sub(SubEntry& entry, Hop link,
                                const CoveringPolicy& policy, bool induced,
                                RoutingDelta& d) {
  entry.forwarded_to.insert(link);
  d.ops.push_back({RoutingOp::Kind::kForwardSub, entry.sub.id, link, induced});
  if (policy.subs) {
    for (SubEntry* t :
         strictly_covered_subs_on_link(entry.sub.id, entry.sub.filter, link)) {
      t->forwarded_to.erase(link);
      d.ops.push_back(
          {RoutingOp::Kind::kRetractSub, t->sub.id, link, /*induced=*/true});
    }
  }
}

void RoutingTables::forward_adv(AdvEntry& entry, Hop link,
                                const CoveringPolicy& policy, bool induced,
                                RoutingDelta& d) {
  entry.forwarded_to.insert(link);
  d.ops.push_back({RoutingOp::Kind::kForwardAdv, entry.adv.id, link, induced});
  if (policy.advs) {
    for (AdvEntry* t :
         strictly_covered_advs_on_link(entry.adv.id, entry.adv.filter, link)) {
      t->forwarded_to.erase(link);
      d.ops.push_back(
          {RoutingOp::Kind::kRetractAdv, t->adv.id, link, /*induced=*/true});
    }
  }
}

RoutingDelta RoutingTables::add_sub(const Subscription& sub, Hop from,
                                    const CoveringPolicy& policy) {
  RoutingDelta d;
  SubEntry& entry = upsert_sub(sub, from);
  // Forward towards every intersecting advertisement's last hop.
  for (const AdvEntry* a : intersecting_advs(sub.filter)) {
    const Hop link = a->lasthop;
    if (!link.is_broker() || link == from) continue;
    if (entry.forwarded_to.contains(link)) continue;
    if (policy.subs && sub_covered_on_link(sub.id, sub.filter, link)) {
      if (std::find(d.quenched.begin(), d.quenched.end(), link) ==
          d.quenched.end()) {
        d.quenched.push_back(link);
      }
      continue;
    }
    forward_sub(entry, link, policy, /*induced=*/false, d);
  }
  return d;
}

RoutingDelta RoutingTables::remove_sub(const SubscriptionId& id, Hop from,
                                       const CoveringPolicy& policy) {
  RoutingDelta d;
  SubEntry* entry = find_sub(id);
  // Stale or duplicate unsubscriptions (possible under covering churn) are
  // dropped: the entry is gone or now owned by a different direction.
  if (!entry || entry->lasthop != from) {
    d.applied = false;
    return d;
  }
  std::vector<Hop> links(entry->forwarded_to.begin(),
                         entry->forwarded_to.end());
  std::sort(links.begin(), links.end());  // deterministic emission order
  entry->forwarded_to.clear();            // stop counting as a coverer

  for (const Hop& link : links) {
    if (policy.subs) {
      // Un-quench: subscriptions this one covered must take over *before*
      // the unsubscription propagates, so publications keep flowing. The
      // candidate set is computed up front; re-check coverage as the burst
      // unfolds so nested candidates forward only their maximal antichain.
      for (SubEntry* t : unquenched_subs_on_link(*entry, link)) {
        if (sub_covered_on_link(t->sub.id, t->sub.filter, link)) continue;
        forward_sub(*t, link, policy, /*induced=*/true, d);
      }
    }
    d.ops.push_back({RoutingOp::Kind::kRetractSub, id, link, false});
  }
  erase_sub(id);
  return d;
}

RoutingDelta RoutingTables::add_adv(const Advertisement& adv, Hop from,
                                    const std::vector<Hop>& flood_links,
                                    const CoveringPolicy& policy) {
  RoutingDelta d;
  AdvEntry& entry = upsert_adv(adv, from);

  // Advertisements flood to all neighbours except the one they came from.
  for (const Hop& link : flood_links) {
    if (!link.is_broker() || link == from) continue;
    if (entry.forwarded_to.contains(link)) continue;
    if (policy.advs && adv_covered_on_link(adv.id, adv.filter, link)) {
      if (std::find(d.quenched.begin(), d.quenched.end(), link) ==
          d.quenched.end()) {
        d.quenched.push_back(link);
      }
      continue;
    }
    forward_adv(entry, link, policy, /*induced=*/false, d);
  }

  // Subscriptions that intersect the new advertisement must now be forwarded
  // towards it (over the link it arrived on).
  if (from.is_broker()) {
    std::vector<SubscriptionId> sids;
    for (const SubEntry* s : subs_intersecting(adv.filter)) {
      sids.push_back(s->sub.id);
    }
    for (const auto& sid : sids) {
      SubEntry* s = find_sub(sid);
      if (!s || s->shadow_only) continue;
      if (s->lasthop == from || s->forwarded_to.contains(from)) continue;
      if (policy.subs && sub_covered_on_link(sid, s->sub.filter, from)) {
        continue;
      }
      forward_sub(*s, from, policy, /*induced=*/false, d);
    }
  }
  return d;
}

RoutingDelta RoutingTables::remove_adv(const AdvertisementId& id, Hop from,
                                       const CoveringPolicy& policy) {
  RoutingDelta d;
  AdvEntry* entry = find_adv(id);
  if (!entry || entry->lasthop != from) {
    d.applied = false;
    return d;
  }
  std::vector<Hop> links(entry->forwarded_to.begin(),
                         entry->forwarded_to.end());
  std::sort(links.begin(), links.end());
  entry->forwarded_to.clear();

  for (const Hop& link : links) {
    if (policy.advs) {
      for (AdvEntry* t : unquenched_advs_on_link(*entry, link)) {
        if (adv_covered_on_link(t->adv.id, t->adv.filter, link)) continue;
        forward_adv(*t, link, policy, /*induced=*/true, d);
      }
    }
    d.ops.push_back({RoutingOp::Kind::kRetractAdv, id, link, false});
  }
  // Subscription forwarding state that pointed towards this advertisement is
  // left in place: the paper's routing consistency explicitly allows stale
  // entries, and removing them here would require per-advertisement
  // refcounts on every mark.
  erase_adv(id);
  return d;
}

RoutingDelta RoutingTables::dispatch(const RoutingMutation& m,
                                     const CoveringPolicy& policy) {
  switch (m.kind) {
    case RoutingMutation::Kind::kAddSub:
      return add_sub(m.sub, m.from, policy);
    case RoutingMutation::Kind::kRemoveSub:
      return remove_sub(m.id, m.from, policy);
    case RoutingMutation::Kind::kAddAdv:
      return add_adv(m.adv, m.from, m.flood_links, policy);
    case RoutingMutation::Kind::kRemoveAdv:
      return remove_adv(m.id, m.from, policy);
  }
  return {};  // unreachable
}

RoutingDelta RoutingTables::apply(const RoutingMutation& m,
                                  const CoveringPolicy& policy) {
  MutationBatch scope(*this);
  return dispatch(m, policy);
}

std::vector<RoutingDelta> RoutingTables::apply_batch(
    const std::vector<RoutingMutation>& muts, const CoveringPolicy& policy) {
  MutationBatch scope(*this);
  std::vector<RoutingDelta> out;
  out.reserve(muts.size());
  for (const RoutingMutation& m : muts) out.push_back(dispatch(m, policy));
  return out;
}

// --- covering-index consistency -----------------------------------------------

std::vector<std::string> RoutingTables::check_cover_index() const {
  std::vector<std::string> out;
  if (sub_cover_.size() != prt_.size()) {
    out.push_back("sub cover index size " + std::to_string(sub_cover_.size()) +
                  " != PRT size " + std::to_string(prt_.size()));
  }
  if (adv_cover_.size() != srt_.size()) {
    out.push_back("adv cover index size " + std::to_string(adv_cover_.size()) +
                  " != SRT size " + std::to_string(srt_.size()));
  }
  const auto contains = [](const std::vector<EntityId>& v, const EntityId& id) {
    return std::find(v.begin(), v.end(), id) != v.end();
  };
  std::vector<EntityId> ids;
  for (const auto& [id, e] : prt_) {
    ids.clear();
    sub_cover_.coverer_candidates(e.sub.filter, ids);
    if (!contains(ids, id)) {
      out.push_back("PRT entry " + to_string(id) +
                    " missing from its own coverer candidates");
    }
    ids.clear();
    sub_cover_.covered_candidates(e.sub.filter, ids);
    if (!contains(ids, id)) {
      out.push_back("PRT entry " + to_string(id) +
                    " missing from its own covered candidates");
    }
  }
  for (const auto& [id, e] : srt_) {
    ids.clear();
    adv_cover_.coverer_candidates(e.adv.filter, ids);
    if (!contains(ids, id)) {
      out.push_back("SRT entry " + to_string(id) +
                    " missing from its own coverer candidates");
    }
    ids.clear();
    adv_cover_.covered_candidates(e.adv.filter, ids);
    if (!contains(ids, id)) {
      out.push_back("SRT entry " + to_string(id) +
                    " missing from its own covered candidates");
    }
  }
  const auto check_filings = [&out](const CoveringIndex& idx, const auto& table,
                                    const char* name) {
    std::vector<EntityId> filed;
    idx.all_ids(filed);
    std::sort(filed.begin(), filed.end());
    for (std::size_t i = 0; i < filed.size(); ++i) {
      if (i > 0 && filed[i] == filed[i - 1]) {
        out.push_back(std::string(name) + " cover index files " +
                      to_string(filed[i]) + " more than once");
      }
      if (!table.contains(filed[i])) {
        out.push_back(std::string(name) + " cover index holds dangling id " +
                      to_string(filed[i]));
      }
    }
  };
  check_filings(sub_cover_, prt_, "sub");
  check_filings(adv_cover_, srt_, "adv");
  return out;
}

std::vector<std::string> RoutingTables::check_forward_index() const {
  // The index's own structural invariants first (filings present exactly
  // once, no dead postings, slot targets consistent).
  std::vector<std::string> out = fwd_.check();
  if (fwd_.size() != prt_.size()) {
    out.push_back("forward index size " + std::to_string(fwd_.size()) +
                  " != PRT size " + std::to_string(prt_.size()));
  }
  std::vector<SubscriptionId> filed;
  fwd_.all_ids(filed);
  std::sort(filed.begin(), filed.end());
  for (std::size_t i = 0; i < filed.size(); ++i) {
    if (i > 0 && filed[i] == filed[i - 1]) {
      out.push_back("forward index files " + to_string(filed[i]) +
                    " more than once");
    }
    if (!prt_.contains(filed[i])) {
      out.push_back("forward index holds dangling id " + to_string(filed[i]));
    }
  }
  // Self-candidacy: probe with a witness publication drawn from the entry's
  // own filter (one satisfying value per constrained attribute, when one is
  // directly constructible from the interval view); the entry must be among
  // the candidates. Entries whose witness is not constructible (open bounds
  // only) are covered by the equivalence property test instead.
  std::vector<SubscriptionId> cands;
  for (const auto& [id, e] : prt_) {
    const Filter& f = e.sub.filter;
    if (!f.satisfiable()) continue;
    Publication w;
    bool constructible = true;
    for (const auto& [attr, c] : f.constraints()) {
      if (const auto s = c.singleton_value(); s && c.satisfies(*s)) {
        w.set(attr, *s);
      } else if (c.lower_bound() && !c.lower_open() &&
                 c.satisfies(*c.lower_bound())) {
        w.set(attr, *c.lower_bound());
      } else if (c.upper_bound() && !c.upper_open() &&
                 c.satisfies(*c.upper_bound())) {
        w.set(attr, *c.upper_bound());
      } else if (c.unconstrained()) {
        w.set(attr, Value{0});
      } else {
        constructible = false;
        break;
      }
    }
    if (!constructible || !f.matches(w)) continue;
    cands.clear();
    fwd_.candidates(w, cands);
    if (std::find(cands.begin(), cands.end(), id) == cands.end()) {
      out.push_back("PRT entry " + to_string(id) +
                    " missing from the candidates of its own witness "
                    "publication");
    }
  }
  return out;
}

void RoutingTables::install_sub_shadow(const Subscription& sub, Hop new_hop,
                                       TxnId txn) {
  ++version_;
  auto [it, inserted] = prt_.try_emplace(sub.id);
  if (inserted) {
    it->second.sub = sub;
    it->second.lasthop = Hop::none();
    it->second.shadow_only = true;
    fwd_.insert(sub.id, sub.filter);
    sub_cover_.insert(sub.id, sub.filter);
  }
  it->second.shadow_lasthop = new_hop;
  it->second.shadow_txn = txn;
}

void RoutingTables::install_adv_shadow(const Advertisement& adv, Hop new_hop,
                                       TxnId txn) {
  ++version_;
  auto [it, inserted] = srt_.try_emplace(adv.id);
  if (inserted) {
    it->second.adv = adv;
    it->second.lasthop = Hop::none();
    it->second.shadow_only = true;
    adv_cover_.insert(adv.id, adv.filter);
  }
  it->second.shadow_lasthop = new_hop;
  it->second.shadow_txn = txn;
}

void RoutingTables::commit_shadow(const SubscriptionId& sub_id, TxnId txn) {
  auto* e = find_sub(sub_id);
  if (!e || !e->shadow_lasthop || e->shadow_txn != txn) return;
  ++version_;
  e->lasthop = *e->shadow_lasthop;
  e->shadow_lasthop.reset();
  e->shadow_txn = kNoTxn;
  e->shadow_only = false;
}

void RoutingTables::commit_adv_shadow(const AdvertisementId& adv_id,
                                      TxnId txn) {
  auto* e = find_adv(adv_id);
  if (!e || !e->shadow_lasthop || e->shadow_txn != txn) return;
  ++version_;
  e->lasthop = *e->shadow_lasthop;
  e->shadow_lasthop.reset();
  e->shadow_txn = kNoTxn;
  e->shadow_only = false;
}

void RoutingTables::abort_shadow(const SubscriptionId& sub_id, TxnId txn) {
  auto* e = find_sub(sub_id);
  if (!e || !e->shadow_lasthop || e->shadow_txn != txn) return;
  ++version_;
  e->shadow_lasthop.reset();
  e->shadow_txn = kNoTxn;
  if (e->shadow_only) erase_sub(sub_id);
}

void RoutingTables::abort_adv_shadow(const AdvertisementId& adv_id,
                                     TxnId txn) {
  auto* e = find_adv(adv_id);
  if (!e || !e->shadow_lasthop || e->shadow_txn != txn) return;
  ++version_;
  e->shadow_lasthop.reset();
  e->shadow_txn = kNoTxn;
  if (e->shadow_only) erase_adv(adv_id);
}

bool RoutingTables::has_pending_shadows() const {
  for (const auto& [id, e] : prt_) {
    if (e.shadow_lasthop) return true;
  }
  for (const auto& [id, e] : srt_) {
    if (e.shadow_lasthop) return true;
  }
  return false;
}

std::string RoutingTables::debug_string() const {
  std::string s = "PRT{\n";
  for (const auto& [id, e] : prt_) {
    s += "  " + e.sub.to_string() + " last=" + e.lasthop.to_string();
    if (e.shadow_lasthop) s += " shadow=" + e.shadow_lasthop->to_string();
    s += "\n";
  }
  s += "} SRT{\n";
  for (const auto& [id, e] : srt_) {
    s += "  " + e.adv.to_string() + " last=" + e.lasthop.to_string();
    if (e.shadow_lasthop) s += " shadow=" + e.shadow_lasthop->to_string();
    s += "\n";
  }
  return s + "}";
}

}  // namespace tmps
