#include "routing/routing_tables.h"

#include <algorithm>

namespace tmps {

SubEntry& RoutingTables::upsert_sub(const Subscription& sub, Hop lasthop) {
  auto [it, inserted] = prt_.try_emplace(sub.id);
  if (!inserted) index_.erase(sub.id, it->second.sub.filter);
  it->second.sub = sub;
  it->second.lasthop = lasthop;
  if (inserted) it->second.shadow_only = false;
  index_.insert(sub.id, sub.filter);
  return it->second;
}

SubEntry* RoutingTables::find_sub(const SubscriptionId& id) {
  auto it = prt_.find(id);
  return it == prt_.end() ? nullptr : &it->second;
}

const SubEntry* RoutingTables::find_sub(const SubscriptionId& id) const {
  auto it = prt_.find(id);
  return it == prt_.end() ? nullptr : &it->second;
}

void RoutingTables::erase_sub(const SubscriptionId& id) {
  auto it = prt_.find(id);
  if (it == prt_.end()) return;
  index_.erase(id, it->second.sub.filter);
  prt_.erase(it);
}

AdvEntry& RoutingTables::upsert_adv(const Advertisement& adv, Hop lasthop) {
  auto [it, inserted] = srt_.try_emplace(adv.id);
  it->second.adv = adv;
  it->second.lasthop = lasthop;
  if (inserted) it->second.shadow_only = false;
  return it->second;
}

AdvEntry* RoutingTables::find_adv(const AdvertisementId& id) {
  auto it = srt_.find(id);
  return it == srt_.end() ? nullptr : &it->second;
}

const AdvEntry* RoutingTables::find_adv(const AdvertisementId& id) const {
  auto it = srt_.find(id);
  return it == srt_.end() ? nullptr : &it->second;
}

void RoutingTables::erase_adv(const AdvertisementId& id) { srt_.erase(id); }

std::vector<Hop> RoutingTables::hops_for_publication(
    const Publication& pub) const {
  std::vector<Hop> hops;
  std::vector<SubscriptionId> cands;
  index_.candidates(pub, cands);
  for (const auto& id : cands) {
    const auto it = prt_.find(id);
    if (it == prt_.end()) continue;
    const SubEntry& e = it->second;
    if (!e.sub.filter.matches(pub)) continue;
    // Shadow-only entries have no live primary hop; skip Hop::none().
    if (!e.shadow_only && !e.lasthop.is_none() &&
        std::find(hops.begin(), hops.end(), e.lasthop) == hops.end()) {
      hops.push_back(e.lasthop);
    }
    if (e.shadow_lasthop && !e.shadow_lasthop->is_none() &&
        std::find(hops.begin(), hops.end(), *e.shadow_lasthop) == hops.end()) {
      hops.push_back(*e.shadow_lasthop);
    }
  }
  return hops;
}

std::vector<const SubEntry*> RoutingTables::matching_subs(
    const Publication& pub) const {
  std::vector<const SubEntry*> out;
  std::vector<SubscriptionId> cands;
  index_.candidates(pub, cands);
  for (const auto& id : cands) {
    const auto it = prt_.find(id);
    if (it != prt_.end() && it->second.sub.filter.matches(pub)) {
      out.push_back(&it->second);
    }
  }
  return out;
}

std::vector<const SubEntry*> RoutingTables::matching_subs_scan(
    const Publication& pub) const {
  std::vector<const SubEntry*> out;
  for (const auto& [id, e] : prt_) {
    if (e.sub.filter.matches(pub)) out.push_back(&e);
  }
  return out;
}

std::vector<const AdvEntry*> RoutingTables::intersecting_advs(
    const Filter& sub) const {
  std::vector<const AdvEntry*> out;
  for (const auto& [id, e] : srt_) {
    if (sub.intersects_advertisement(e.adv.filter)) out.push_back(&e);
  }
  return out;
}

std::vector<const SubEntry*> RoutingTables::subs_intersecting(
    const Filter& adv) const {
  std::vector<const SubEntry*> out;
  for (const auto& [id, e] : prt_) {
    if (e.sub.filter.intersects_advertisement(adv)) out.push_back(&e);
  }
  return out;
}

void RoutingTables::install_sub_shadow(const Subscription& sub, Hop new_hop,
                                       TxnId txn) {
  auto [it, inserted] = prt_.try_emplace(sub.id);
  if (inserted) {
    it->second.sub = sub;
    it->second.lasthop = Hop::none();
    it->second.shadow_only = true;
    index_.insert(sub.id, sub.filter);
  }
  it->second.shadow_lasthop = new_hop;
  it->second.shadow_txn = txn;
}

void RoutingTables::install_adv_shadow(const Advertisement& adv, Hop new_hop,
                                       TxnId txn) {
  auto [it, inserted] = srt_.try_emplace(adv.id);
  if (inserted) {
    it->second.adv = adv;
    it->second.lasthop = Hop::none();
    it->second.shadow_only = true;
  }
  it->second.shadow_lasthop = new_hop;
  it->second.shadow_txn = txn;
}

void RoutingTables::commit_shadow(const SubscriptionId& sub_id, TxnId txn) {
  auto* e = find_sub(sub_id);
  if (!e || !e->shadow_lasthop || e->shadow_txn != txn) return;
  e->lasthop = *e->shadow_lasthop;
  e->shadow_lasthop.reset();
  e->shadow_txn = kNoTxn;
  e->shadow_only = false;
}

void RoutingTables::commit_adv_shadow(const AdvertisementId& adv_id,
                                      TxnId txn) {
  auto* e = find_adv(adv_id);
  if (!e || !e->shadow_lasthop || e->shadow_txn != txn) return;
  e->lasthop = *e->shadow_lasthop;
  e->shadow_lasthop.reset();
  e->shadow_txn = kNoTxn;
  e->shadow_only = false;
}

void RoutingTables::abort_shadow(const SubscriptionId& sub_id, TxnId txn) {
  auto* e = find_sub(sub_id);
  if (!e || !e->shadow_lasthop || e->shadow_txn != txn) return;
  e->shadow_lasthop.reset();
  e->shadow_txn = kNoTxn;
  if (e->shadow_only) erase_sub(sub_id);
}

void RoutingTables::abort_adv_shadow(const AdvertisementId& adv_id,
                                     TxnId txn) {
  auto* e = find_adv(adv_id);
  if (!e || !e->shadow_lasthop || e->shadow_txn != txn) return;
  e->shadow_lasthop.reset();
  e->shadow_txn = kNoTxn;
  if (e->shadow_only) srt_.erase(adv_id);
}

bool RoutingTables::has_pending_shadows() const {
  for (const auto& [id, e] : prt_) {
    if (e.shadow_lasthop) return true;
  }
  for (const auto& [id, e] : srt_) {
    if (e.shadow_lasthop) return true;
  }
  return false;
}

std::string RoutingTables::debug_string() const {
  std::string s = "PRT{\n";
  for (const auto& [id, e] : prt_) {
    s += "  " + e.sub.to_string() + " last=" + e.lasthop.to_string();
    if (e.shadow_lasthop) s += " shadow=" + e.shadow_lasthop->to_string();
    s += "\n";
  }
  s += "} SRT{\n";
  for (const auto& [id, e] : srt_) {
    s += "  " + e.adv.to_string() + " last=" + e.lasthop.to_string();
    if (e.shadow_lasthop) s += " shadow=" + e.shadow_lasthop->to_string();
    s += "\n";
  }
  return s + "}";
}

}  // namespace tmps
