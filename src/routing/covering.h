// Covering-optimization decisions over a broker's routing tables.
//
// PADRES-style covering ("active" variant, as described in Sec. 4.4 of the
// paper): on each overlay link the broker keeps forwarded only a minimal
// antichain of its subscriptions (and advertisements) under the covering
// relation.
//   * A new subscription covered by one already forwarded over a link is
//     quenched (not forwarded there).
//   * A new subscription that strictly covers ones already forwarded over a
//     link is forwarded and the covered ones are retracted (unsubscribed)
//     over that link — the behaviour the paper identifies as pathological
//     under mobility.
//   * Removing a subscription un-quenches the subscriptions it covered: they
//     must be (re)forwarded over the affected links before the
//     unsubscription propagates.
// Mutual covering (equal filters) is broken by forwarding only the earliest
// id, so 40 clients with identical subscriptions forward one representative.
//
// The decision procedures live on RoutingTables itself, candidate-
// accelerated by the covering index (routing/covering_index.h) with
// full-scan `*_scan` oracles. (The free-function wrappers that used to
// forward here were deprecated for one release and are now gone.)
#pragma once

#include <string>
#include <vector>

#include "routing/routing_tables.h"

namespace tmps {

/// Audits the covering invariants at one broker over the given links:
///  (1) antichain — no forwarded subscription is strictly covered by another
///      forwarded subscription on the same link (retraction happened);
///  (2) quench completeness — every subscription that needs a link (an
///      intersecting advertisement lies behind it) is either forwarded there
///      or covered by one that is (delivery is never silently dropped).
/// Returns human-readable violation descriptions; empty means consistent.
/// Only meaningful at quiesce points of covering-enabled static networks
/// (in-flight operations and mobility shadow state legitimately break it).
/// Deliberately runs on the scan oracles so it stays independent of the
/// covering index it may be auditing.
std::vector<std::string> audit_covering_invariants(
    const RoutingTables& rt, const std::vector<Hop>& links);

}  // namespace tmps
