// Covering-optimization decisions over a broker's routing tables.
//
// PADRES-style covering ("active" variant, as described in Sec. 4.4 of the
// paper): on each overlay link the broker keeps forwarded only a minimal
// antichain of its subscriptions (and advertisements) under the covering
// relation.
//   * A new subscription covered by one already forwarded over a link is
//     quenched (not forwarded there).
//   * A new subscription that strictly covers ones already forwarded over a
//     link is forwarded and the covered ones are retracted (unsubscribed)
//     over that link — the behaviour the paper identifies as pathological
//     under mobility.
//   * Removing a subscription un-quenches the subscriptions it covered: they
//     must be (re)forwarded over the affected links before the
//     unsubscription propagates.
// Mutual covering (equal filters) is broken by forwarding only the earliest
// id, so 40 clients with identical subscriptions forward one representative.
#pragma once

#include <vector>

#include "routing/routing_tables.h"

namespace tmps {

/// Is `filter` (of entry `self`) covered over `link` by another subscription
/// already forwarded over `link`?
bool sub_covered_on_link(const RoutingTables& rt, const SubscriptionId& self,
                         const Filter& filter, Hop link);

/// Subscriptions currently forwarded over `link` that `filter` strictly
/// covers (covers but is not covered by) — the retraction set when `self`
/// is newly forwarded over `link`.
std::vector<SubEntry*> strictly_covered_subs_on_link(RoutingTables& rt,
                                                     const SubscriptionId& self,
                                                     const Filter& filter,
                                                     Hop link);

/// Subscriptions that were quenched over `link` (at least in part) by the
/// subscription being removed and have no remaining coverer: they must be
/// forwarded over `link` before the removal propagates. A candidate must
/// also *need* the link, i.e. some advertisement in the SRT with last hop
/// `link` intersects it.
std::vector<SubEntry*> unquenched_subs_on_link(RoutingTables& rt,
                                               const SubEntry& removed,
                                               Hop link);

/// Advertisement analogues.
bool adv_covered_on_link(const RoutingTables& rt, const AdvertisementId& self,
                         const Filter& filter, Hop link);
std::vector<AdvEntry*> strictly_covered_advs_on_link(
    RoutingTables& rt, const AdvertisementId& self, const Filter& filter,
    Hop link);
/// Advertisements quenched by the removed one over `link` with no remaining
/// coverer. Advertisements are flooded, so every non-lasthop link qualifies
/// as "needed".
std::vector<AdvEntry*> unquenched_advs_on_link(RoutingTables& rt,
                                               const AdvEntry& removed,
                                               Hop link);

/// Audits the covering invariants at one broker over the given links:
///  (1) antichain — no forwarded subscription is strictly covered by another
///      forwarded subscription on the same link (retraction happened);
///  (2) quench completeness — every subscription that needs a link (an
///      intersecting advertisement lies behind it) is either forwarded there
///      or covered by one that is (delivery is never silently dropped).
/// Returns human-readable violation descriptions; empty means consistent.
/// Only meaningful at quiesce points of covering-enabled static networks
/// (in-flight operations and mobility shadow state legitimately break it).
std::vector<std::string> audit_covering_invariants(
    const RoutingTables& rt, const std::vector<Hop>& links);

}  // namespace tmps
