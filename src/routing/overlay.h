// The acyclic broker overlay: topology, unique paths, and the standard
// topologies used by the paper's evaluation.
//
// The paper assumes an acyclic (tree) overlay, which makes the route between
// any two brokers unique — the property the hop-by-hop reconfiguration
// protocol exploits (Sec. 4.4, RouteS2T).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/ids.h"

namespace tmps {

class Overlay {
 public:
  /// Builds an overlay over brokers 1..n with the given undirected edges.
  /// Precondition (checked): edges form a tree over 1..n.
  Overlay(std::uint32_t broker_count,
          std::vector<std::pair<BrokerId, BrokerId>> edges);

  /// The paper's default 14-broker topology (Fig. 6), reconstructed as a
  /// spine 3-4-8-12 with leaf clusters: {1,2}-3, 5-4, {6,7}-5, 9-8,
  /// {10,11}-9, {13,14}-12. Path(1,13) and path(2,14) are both 6 hops and
  /// share the spine, matching the congestion interplay in Fig. 8.
  static Overlay paper_default();

  /// Topology family for the Fig. 13 experiment: grows from 12 to 26 brokers
  /// while keeping the path length between the moving endpoints (1<->12 and
  /// 2<->14) constant. The 8-broker core {1,2,3,4,8,12,13,14} is fixed;
  /// additional brokers attach as leaves round-robin on the spine.
  static Overlay fig13_topology(std::uint32_t broker_count);

  /// Uniformly random labelled tree over 1..n (random Prüfer sequence),
  /// for property tests.
  static Overlay random_tree(std::uint32_t broker_count, std::uint64_t seed);

  /// A simple chain 1-2-...-n.
  static Overlay chain(std::uint32_t broker_count);

  /// A star with broker 1 in the centre.
  static Overlay star(std::uint32_t broker_count);

  std::uint32_t broker_count() const { return n_; }
  bool contains(BrokerId b) const { return b >= 1 && b <= n_; }

  const std::vector<BrokerId>& neighbors(BrokerId b) const;

  bool are_neighbors(BrokerId a, BrokerId b) const;

  /// The next broker on the unique path from `from` towards `to`.
  /// Precondition: from != to.
  BrokerId next_hop(BrokerId from, BrokerId to) const;

  /// The unique path <from, ..., to> inclusive of both endpoints.
  std::vector<BrokerId> path(BrokerId from, BrokerId to) const;

  /// Number of edges on the path between a and b.
  std::uint32_t distance(BrokerId a, BrokerId b) const;

  const std::vector<std::pair<BrokerId, BrokerId>>& edges() const {
    return edges_;
  }

 private:
  std::uint32_t n_;
  std::vector<std::pair<BrokerId, BrokerId>> edges_;
  std::vector<std::vector<BrokerId>> adj_;       // adj_[b] for b in 1..n
  std::vector<std::vector<BrokerId>> next_hop_;  // next_hop_[from][to]

  void build_tables();
};

}  // namespace tmps
