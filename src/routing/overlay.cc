#include "routing/overlay.h"

#include <algorithm>
#include <cassert>
#include <queue>
#include <random>
#include <stdexcept>

namespace tmps {

Overlay::Overlay(std::uint32_t broker_count,
                 std::vector<std::pair<BrokerId, BrokerId>> edges)
    : n_(broker_count), edges_(std::move(edges)) {
  if (n_ < 1) throw std::invalid_argument("overlay needs at least one broker");
  if (edges_.size() != n_ - 1) {
    throw std::invalid_argument("acyclic overlay over n brokers needs n-1 edges");
  }
  adj_.assign(n_ + 1, {});
  for (const auto& [a, b] : edges_) {
    if (!contains(a) || !contains(b) || a == b) {
      throw std::invalid_argument("edge endpoint out of range");
    }
    adj_[a].push_back(b);
    adj_[b].push_back(a);
  }
  build_tables();
}

void Overlay::build_tables() {
  // BFS from every broker; n is small (tens), so O(n^2) tables are cheap and
  // make next_hop O(1) on the hot path.
  next_hop_.assign(n_ + 1, std::vector<BrokerId>(n_ + 1, kNoBroker));
  std::vector<BrokerId> parent(n_ + 1);
  for (BrokerId root = 1; root <= n_; ++root) {
    std::fill(parent.begin(), parent.end(), kNoBroker);
    std::queue<BrokerId> q;
    q.push(root);
    parent[root] = root;
    std::uint32_t visited = 0;
    while (!q.empty()) {
      const BrokerId u = q.front();
      q.pop();
      ++visited;
      for (const BrokerId v : adj_[u]) {
        if (parent[v] == kNoBroker) {
          parent[v] = u;
          q.push(v);
        }
      }
    }
    if (visited != n_) throw std::invalid_argument("overlay is disconnected");
    // next_hop_[v][root]: first step from v towards root is v's BFS parent.
    for (BrokerId v = 1; v <= n_; ++v) {
      if (v != root) next_hop_[v][root] = parent[v];
    }
  }
}

const std::vector<BrokerId>& Overlay::neighbors(BrokerId b) const {
  assert(contains(b));
  return adj_[b];
}

bool Overlay::are_neighbors(BrokerId a, BrokerId b) const {
  const auto& na = neighbors(a);
  return std::find(na.begin(), na.end(), b) != na.end();
}

BrokerId Overlay::next_hop(BrokerId from, BrokerId to) const {
  assert(contains(from) && contains(to) && from != to);
  return next_hop_[from][to];
}

std::vector<BrokerId> Overlay::path(BrokerId from, BrokerId to) const {
  std::vector<BrokerId> p{from};
  while (from != to) {
    from = next_hop(from, to);
    p.push_back(from);
  }
  return p;
}

std::uint32_t Overlay::distance(BrokerId a, BrokerId b) const {
  std::uint32_t d = 0;
  while (a != b) {
    a = next_hop(a, b);
    ++d;
  }
  return d;
}

Overlay Overlay::paper_default() {
  return Overlay(14, {{1, 3},
                      {2, 3},
                      {3, 4},
                      {4, 5},
                      {5, 6},
                      {5, 7},
                      {4, 8},
                      {8, 9},
                      {9, 10},
                      {9, 11},
                      {8, 12},
                      {12, 13},
                      {12, 14}});
}

Overlay Overlay::fig13_topology(std::uint32_t broker_count) {
  if (broker_count < 14) {
    // The fixed core references brokers 13 and 14 (movement endpoints), so
    // the family starts at 14 brokers. (The paper sweeps 12..26; our sweep
    // starts at its default topology size.)
    throw std::invalid_argument("fig13 topology needs at least 14 brokers");
  }
  // Fixed core: spine 3-4-8-12 with endpoints 1,2 at the left and 13,14 at
  // the right. Paths 1->12 (4 hops) and 2->14 (5 hops) never change length.
  std::vector<std::pair<BrokerId, BrokerId>> edges{
      {1, 3}, {2, 3}, {3, 4}, {4, 8}, {8, 12}, {12, 13}, {12, 14}};
  const BrokerId core[] = {1, 2, 3, 4, 8, 12, 13, 14};
  const BrokerId spine[] = {3, 4, 8, 12};
  // Remaining ids (5,6,7,9,10,11,15,16,...) attach as leaves round-robin.
  std::uint32_t attached = 0;
  for (BrokerId b = 1; b <= broker_count; ++b) {
    if (std::find(std::begin(core), std::end(core), b) != std::end(core)) {
      continue;
    }
    edges.emplace_back(spine[attached % std::size(spine)], b);
    ++attached;
  }
  return Overlay(broker_count, std::move(edges));
}

Overlay Overlay::random_tree(std::uint32_t broker_count, std::uint64_t seed) {
  if (broker_count == 1) return Overlay(1, {});
  if (broker_count == 2) return Overlay(2, {{1, 2}});
  // Decode a uniformly random Prüfer sequence.
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<BrokerId> dist(1, broker_count);
  std::vector<BrokerId> pruefer(broker_count - 2);
  for (auto& x : pruefer) x = dist(rng);

  std::vector<std::uint32_t> degree(broker_count + 1, 1);
  for (const BrokerId x : pruefer) ++degree[x];

  std::priority_queue<BrokerId, std::vector<BrokerId>, std::greater<>> leaves;
  for (BrokerId b = 1; b <= broker_count; ++b) {
    if (degree[b] == 1) leaves.push(b);
  }
  std::vector<std::pair<BrokerId, BrokerId>> edges;
  edges.reserve(broker_count - 1);
  for (const BrokerId x : pruefer) {
    const BrokerId leaf = leaves.top();
    leaves.pop();
    edges.emplace_back(leaf, x);
    if (--degree[x] == 1) leaves.push(x);
  }
  const BrokerId a = leaves.top();
  leaves.pop();
  const BrokerId b = leaves.top();
  edges.emplace_back(a, b);
  return Overlay(broker_count, std::move(edges));
}

Overlay Overlay::chain(std::uint32_t broker_count) {
  std::vector<std::pair<BrokerId, BrokerId>> edges;
  for (BrokerId b = 1; b < broker_count; ++b) edges.emplace_back(b, b + 1);
  return Overlay(broker_count, std::move(edges));
}

Overlay Overlay::star(std::uint32_t broker_count) {
  std::vector<std::pair<BrokerId, BrokerId>> edges;
  for (BrokerId b = 2; b <= broker_count; ++b) edges.emplace_back(1, b);
  return Overlay(broker_count, std::move(edges));
}

}  // namespace tmps
