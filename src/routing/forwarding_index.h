// Counting-algorithm publication matcher over the PRT: the second surviving
// application of the two-stage candidate/verify design (covering_index.h is
// the other; it superseded the earlier single-equality SubMatchIndex
// pre-filter), implementing the full per-attribute
// predicate-index scheme of Fabret et al. / Siena that the PADRES forwarding
// layer builds on. This is the data structure behind
// RoutingTables::match() — candidate discovery is O(postings touched by the
// publication's own attributes), not O(subscriptions).
//
// Filing. Each filter is assigned a number of *slots* (constraints that a
// probing publication must satisfy) and filed into per-attribute posting
// lists:
//   * unsatisfiable filters are tracked but filed nowhere — never candidates;
//   * the empty filter matches every publication: an always list appended to
//     every probe;
//   * a filter with at least one equality-pinned attribute is ANCHORED: one
//     slot in a single (attribute, value) equality bucket — adaptively the
//     attribute whose bucket is currently smallest (low-selectivity
//     attributes such as a constant "class" stop attracting entries once
//     they grow), exactly the CoveringIndex filing rule;
//   * otherwise the filter takes COUNTING slots, one per interval bound of
//     each constrained attribute: the lower bound files into an ordered
//     lower-bound posting list, the upper bound into an upper-bound list,
//     and a bound-free constraint (isPresent / exclusions-only) into a
//     presence list. A publication satisfies the filter only if it hits
//     every slot, detected with per-filter satisfied-constraint counters.
//
// Probe. candidates(pub) bumps an epoch and, for each (attribute, value) of
// the publication, hits: the equality bucket at exactly that value; every
// lower-bound posting with bound <= value (== only for closed bounds); every
// upper-bound posting with bound >= value (== only for closed bounds); the
// whole presence list. A hit lazily epoch-resets the filter's counter and
// emits the filter when the counter reaches its slot target. Each filing can
// be hit at most once per probe (publication attributes are unique), so
// counters never overshoot and ids are emitted at most once.
//
// Completeness (superset guarantee — callers verify with Filter::matches):
// if a publication truly matches a filter, then for every constrained
// attribute its value lies in the constraint interval, so every bound slot
// is hit; an anchored filter's pinned value is carried verbatim by the
// publication, so its equality slot is hit (Value's total order unifies
// Int 5 with Real 5.0 under the std::map key lookup). Exclusions and domain
// pins are deliberately ignored at this stage — they only widen the
// candidate set, never narrow it below the true matches.
//
// Like the covering index, this index tracks table MEMBERSHIP only; last
// hops, shadow hops and forwarded_to are verification-stage state, so raw
// mutation of them cannot desynchronize the index.
//
// Batching. begin_batch()/end_batch() queue insert/erase mutations and
// coalesce them per id on flush (only the final state of an id is filed) —
// mobility hand-off and balancer bursts erase-and-reinsert whole client
// profiles, and amortizing that churn is RoutingTables::apply_batch's job.
// While a batch is open the postings are stale; candidates() compensates by
// conservatively appending every pending-insert id (still a verified
// superset), so a stray query inside a batch stays correct.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "pubsub/filter.h"
#include "pubsub/publication.h"

namespace tmps {

class ForwardingIndex {
 public:
  /// Files `id` under `filter`. Re-inserting an id re-files it (the previous
  /// filing is erased first); no prior erase needed.
  void insert(const SubscriptionId& id, const Filter& filter);

  /// Removes `id`'s filing. The filter is not needed — filings are recorded
  /// per entry. Unknown ids are ignored.
  void erase(const SubscriptionId& id);

  /// Appends all candidate ids for `pub`: a duplicate-free superset of the
  /// subscriptions whose filter matches it.
  void candidates(const Publication& pub,
                  std::vector<SubscriptionId>& out) const;

  /// Open/close a mutation batch (nestable). Inside a batch, insert/erase
  /// are queued; the outermost end_batch() flushes them with per-id
  /// coalescing, so erase-then-reinsert churn files each id once.
  void begin_batch() { ++batch_depth_; }
  void end_batch();
  bool in_batch() const { return batch_depth_ > 0; }

  /// Filed ids, including unsatisfiable and always-matching ones. Pending
  /// batch mutations are not reflected until flush.
  std::size_t size() const { return slot_of_.size(); }
  std::size_t anchored_count() const { return anchored_; }
  std::size_t counting_count() const { return counting_; }
  std::size_t always_count() const { return always_.size(); }
  std::size_t unsat_count() const { return unsat_; }

  /// Every filed id (consistency checks).
  void all_ids(std::vector<SubscriptionId>& out) const;

  /// Structural self-check: every rec's filings are present exactly once in
  /// the posting structures, no posting refers to a dead rec, slot targets
  /// match filing counts, and no batch is left open. Returns violation
  /// descriptions; empty = consistent.
  std::vector<std::string> check() const;

 private:
  enum class Where : std::uint8_t { kNowhere, kAlways, kAnchor, kCounting };

  struct Filing {
    enum class Kind : std::uint8_t { kEq, kLower, kUpper, kPresent };
    Kind kind;
    bool open = false;  // open interval bound (kLower/kUpper)
    std::string attr;
    Value value;  // unused for kPresent
  };

  struct Rec {
    SubscriptionId id;
    Where where = Where::kNowhere;
    std::uint16_t slots = 0;  // counter target; 0 for kNowhere/kAlways
    std::vector<Filing> filings;
    // Per-probe scratch: lazily epoch-reset satisfied-constraint counter
    // (mutable so candidates() stays const; single-threaded like the rest
    // of the routing layer).
    mutable std::uint64_t epoch = 0;
    mutable std::uint16_t hits = 0;
  };

  /// Postings reference recs by dense slot index (stable across unrelated
  /// mutations via a free list).
  using Slots = std::vector<std::uint32_t>;
  struct BoundPosting {
    Slots closed, open;
    bool empty() const { return closed.empty() && open.empty(); }
  };
  // Ordered by value so bound probes are range scans; Value's total order
  // (numerics before strings) keeps cross-domain keys harmless — extra hits
  // are verified away.
  using EqList = std::map<Value, Slots>;
  using BoundList = std::map<Value, BoundPosting>;

  void do_insert(const SubscriptionId& id, const Filter& filter);
  void do_erase(const SubscriptionId& id);
  void hit(std::uint32_t slot, std::vector<SubscriptionId>& out) const;

  std::unordered_map<std::string, EqList> eq_;
  std::unordered_map<std::string, BoundList> lower_, upper_;
  std::unordered_map<std::string, Slots> present_;
  Slots always_;

  std::vector<Rec> recs_;
  Slots free_;
  std::unordered_map<SubscriptionId, std::uint32_t> slot_of_;
  std::size_t anchored_ = 0, counting_ = 0, unsat_ = 0;
  mutable std::uint64_t epoch_ = 0;

  struct Pending {
    bool is_insert;
    SubscriptionId id;
    Filter filter;  // empty for erases
  };
  std::vector<Pending> pending_;
  int batch_depth_ = 0;
};

}  // namespace tmps
