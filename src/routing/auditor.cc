#include "routing/auditor.h"

#include <set>

namespace tmps {

std::string AuditViolation::to_string() const {
  return "sub " + tmps::to_string(sub) + " (subscriber at B" +
         std::to_string(subscriber_broker) + ", publisher at B" +
         std::to_string(publisher_broker) + "): " + detail;
}

void RoutingAuditor::expect_subscriber(const SubscriptionId& sub,
                                       const Filter& filter, BrokerId at) {
  subs_[sub] = Expected{filter, at};
}

void RoutingAuditor::expect_publisher(const AdvertisementId& adv,
                                      const Filter& filter, BrokerId at) {
  advs_[adv] = Expected{filter, at};
}

std::string RoutingAuditor::walk(const SubscriptionId& sub, BrokerId from,
                                 BrokerId to, const Filter&) const {
  BrokerId cur = from;
  std::set<BrokerId> visited;
  while (true) {
    if (!visited.insert(cur).second) {
      return "loop at B" + std::to_string(cur);
    }
    const RoutingTables& tables = tables_of_(cur);
    const SubEntry* e = tables.find_sub(sub);
    if (!e) return "no PRT entry at B" + std::to_string(cur);
    const Hop next = e->lasthop;
    if (next.is_client()) {
      if (cur != to) {
        return "client hop at B" + std::to_string(cur) + " but subscriber is at B" +
               std::to_string(to);
      }
      if (next.client != sub.client) {
        return "entry at B" + std::to_string(cur) + " points at client " +
               std::to_string(next.client);
      }
      return {};
    }
    if (!next.is_broker()) {
      return "dead entry (no last hop) at B" + std::to_string(cur);
    }
    if (!overlay_->are_neighbors(cur, next.broker)) {
      return "entry at B" + std::to_string(cur) + " points at non-neighbour B" +
             std::to_string(next.broker);
    }
    cur = next.broker;
  }
}

std::vector<AuditViolation> RoutingAuditor::audit() const {
  std::vector<AuditViolation> out;
  for (const auto& [sid, s] : subs_) {
    for (const auto& [aid, a] : advs_) {
      if (!s.filter.intersects_advertisement(a.filter)) continue;
      const std::string err = walk(sid, a.at, s.at, s.filter);
      if (!err.empty()) {
        out.push_back(AuditViolation{sid, s.at, a.at, err});
      }
    }
  }
  return out;
}

std::vector<AuditViolation> RoutingAuditor::audit_no_shadows() const {
  std::vector<AuditViolation> out;
  for (BrokerId b = 1; b <= overlay_->broker_count(); ++b) {
    if (tables_of_(b).has_pending_shadows()) {
      out.push_back(AuditViolation{
          {}, kNoBroker, b, "unresolved shadow state at B" + std::to_string(b)});
    }
  }
  return out;
}

}  // namespace tmps
