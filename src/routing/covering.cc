#include "routing/covering.h"

namespace tmps {

bool sub_covered_on_link(const RoutingTables& rt, const SubscriptionId& self,
                         const Filter& filter, Hop link) {
  for (const auto& [id, e] : rt.prt()) {
    if (id == self) continue;
    if (!e.forwarded_to.contains(link)) continue;
    if (e.sub.filter.covers(filter)) return true;
  }
  return false;
}

std::vector<SubEntry*> strictly_covered_subs_on_link(
    RoutingTables& rt, const SubscriptionId& self, const Filter& filter,
    Hop link) {
  std::vector<SubEntry*> out;
  for (auto& [id, e] : rt.prt()) {
    if (id == self) continue;
    if (!e.forwarded_to.contains(link)) continue;
    if (filter.covers(e.sub.filter) && !e.sub.filter.covers(filter)) {
      out.push_back(&e);
    }
  }
  return out;
}

namespace {

/// Does some advertisement whose last hop is `link` intersect `f`? If so,
/// the routing protocol requires subscriptions matching `f` to be forwarded
/// over `link` (that is where matching publications will come from).
bool link_needed_for(const RoutingTables& rt, const Filter& f, Hop link) {
  for (const auto& [id, a] : rt.srt()) {
    if (a.lasthop == link && f.intersects_advertisement(a.adv.filter)) {
      return true;
    }
  }
  return false;
}

}  // namespace

std::vector<SubEntry*> unquenched_subs_on_link(RoutingTables& rt,
                                               const SubEntry& removed,
                                               Hop link) {
  std::vector<SubEntry*> out;
  for (auto& [id, e] : rt.prt()) {
    if (id == removed.sub.id) continue;
    if (e.shadow_only) continue;  // not yet live at this broker
    if (e.lasthop == link) continue;
    if (e.forwarded_to.contains(link)) continue;
    if (!removed.sub.filter.covers(e.sub.filter)) continue;
    if (!link_needed_for(rt, e.sub.filter, link)) continue;
    // A remaining forwarded subscription may still cover it.
    if (sub_covered_on_link(rt, id, e.sub.filter, link)) continue;
    out.push_back(&e);
  }
  return out;
}

bool adv_covered_on_link(const RoutingTables& rt, const AdvertisementId& self,
                         const Filter& filter, Hop link) {
  for (const auto& [id, e] : rt.srt()) {
    if (id == self) continue;
    if (!e.forwarded_to.contains(link)) continue;
    if (e.adv.filter.covers(filter)) return true;
  }
  return false;
}

std::vector<AdvEntry*> strictly_covered_advs_on_link(
    RoutingTables& rt, const AdvertisementId& self, const Filter& filter,
    Hop link) {
  std::vector<AdvEntry*> out;
  for (auto& [id, e] : rt.srt()) {
    if (id == self) continue;
    if (!e.forwarded_to.contains(link)) continue;
    if (filter.covers(e.adv.filter) && !e.adv.filter.covers(filter)) {
      out.push_back(&e);
    }
  }
  return out;
}

std::vector<std::string> audit_covering_invariants(
    const RoutingTables& rt, const std::vector<Hop>& links) {
  std::vector<std::string> out;
  for (const Hop& link : links) {
    for (const auto& [id, e] : rt.prt()) {
      if (e.shadow_only) continue;
      const bool active = e.forwarded_to.contains(link);
      if (active) {
        // (1) antichain: nothing active may strictly cover another active.
        for (const auto& [oid, o] : rt.prt()) {
          if (oid == id || !o.forwarded_to.contains(link)) continue;
          if (o.sub.filter.covers(e.sub.filter) &&
              !e.sub.filter.covers(o.sub.filter)) {
            out.push_back("link " + link.to_string() + ": active sub " +
                          to_string(id) + " strictly covered by active " +
                          to_string(oid));
          }
        }
      } else if (e.lasthop != link &&
                 link_needed_for(rt, e.sub.filter, link) &&
                 !sub_covered_on_link(rt, id, e.sub.filter, link)) {
        // (2) quench completeness.
        out.push_back("link " + link.to_string() + ": sub " + to_string(id) +
                      " needs the link but is neither forwarded nor covered");
      }
    }
  }
  return out;
}

std::vector<AdvEntry*> unquenched_advs_on_link(RoutingTables& rt,
                                               const AdvEntry& removed,
                                               Hop link) {
  std::vector<AdvEntry*> out;
  for (auto& [id, e] : rt.srt()) {
    if (id == removed.adv.id) continue;
    if (e.shadow_only) continue;
    if (e.lasthop == link) continue;
    if (e.forwarded_to.contains(link)) continue;
    if (!removed.adv.filter.covers(e.adv.filter)) continue;
    if (adv_covered_on_link(rt, id, e.adv.filter, link)) continue;
    out.push_back(&e);
  }
  return out;
}

}  // namespace tmps
