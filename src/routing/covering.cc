#include "routing/covering.h"

namespace tmps {

std::vector<std::string> audit_covering_invariants(
    const RoutingTables& rt, const std::vector<Hop>& links) {
  std::vector<std::string> out;
  for (const Hop& link : links) {
    for (const auto& [id, e] : rt.prt()) {
      if (e.shadow_only) continue;
      const bool active = e.forwarded_to.contains(link);
      if (active) {
        // (1) antichain: nothing active may strictly cover another active.
        for (const auto& [oid, o] : rt.prt()) {
          if (oid == id || !o.forwarded_to.contains(link)) continue;
          if (o.sub.filter.covers(e.sub.filter) &&
              !e.sub.filter.covers(o.sub.filter)) {
            out.push_back("link " + link.to_string() + ": active sub " +
                          to_string(id) + " strictly covered by active " +
                          to_string(oid));
          }
        }
      } else if (e.lasthop != link &&
                 rt.link_needed_for_scan(e.sub.filter, link) &&
                 !rt.sub_covered_on_link_scan(id, e.sub.filter, link)) {
        // (2) quench completeness.
        out.push_back("link " + link.to_string() + ": sub " + to_string(id) +
                      " needs the link but is neither forwarded nor covered");
      }
    }
  }
  return out;
}

}  // namespace tmps
