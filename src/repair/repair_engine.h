// Per-broker anti-entropy repair loop: promotes the movement-invariant
// auditor from detector to healer (PSVR-style self-stabilization).
//
// Each broker periodically runs a hop-local invariant sweep over its own
// SRT/PRT/lasthop/shadow state plus the mobility engine's parked transaction
// records, and exchanges forwarding digests with its overlay neighbours
// (piggybacked over the overlay like the balancer's load digests). Every
// divergence from what the movement protocol says *should* hold yields a
// corrective routing op:
//
//   * stale shadow state for a transaction -> probe the coordinator
//     (recoverable from the TxnId encoding) and commit or unwind on the
//     verdict;
//   * parked coordinator state -> MobilityEngine::repair_sweep_parked
//     (abort a pre-commit-point source, retransmit a post-commit-point
//     state message, probe from a parked target);
//   * a PRT/SRT entry whose lasthop is a client not hosted here -> retract
//     the orphan (aged across `confirm_rounds` sweeps);
//   * a neighbour's digest no longer claims an entry it is the lasthop of
//     -> retract; a digest claims an entry we lack -> request a re-send
//     (ordinary SubscribeMsg/AdvertiseMsg upserts);
//   * an entry the SRT says must be forwarded over a link but is not (and
//     is not covered there) -> re-issue: quench/un-quench reconciliation,
//     the covering-safe mobility story.
//
// Destructive repairs (retractions, aborts) require the suspicion to
// persist; additive repairs (re-forwards, retransmissions, probes) are
// idempotent and fire immediately. From any reachable illegal configuration
// each sweep strictly shrinks the set of violated local invariants, so the
// system converges back to a legal configuration within a bounded number of
// rounds — see docs/REPAIR.md for the catalogue and convergence argument.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "broker/broker_config.h"
#include "core/mobility_engine.h"

namespace tmps::repair {

/// Monotonic per-broker repair activity counters (mirrored into the metrics
/// registry as tmps_repair_rounds / tmps_repair_ops_total).
struct RepairStats {
  std::uint64_t rounds = 0;          ///< sweeps executed
  std::uint64_t ops_total = 0;       ///< corrective actions (all kinds)
  std::uint64_t parked_ops = 0;      ///< coordinator-side parked-txn fixes
  std::uint64_t probes_sent = 0;     ///< shadow-resolution probes
  std::uint64_t verdicts_applied = 0;
  std::uint64_t orphans_retracted = 0;  ///< local client-hop orphans
  std::uint64_t digest_retracts = 0;    ///< neighbour-digest orphans
  std::uint64_t reissues_requested = 0;
  std::uint64_t reissues_served = 0;
  std::uint64_t unquenches = 0;      ///< quench-reconciliation re-forwards
  std::uint64_t last_op_round = 0;   ///< round of the most recent op
  double last_op_time = 0;
  std::size_t suspect_shadows = 0;   ///< txns with live local shadow state
};

class RepairEngine final : public RepairHandler {
 public:
  using Outputs = MobilityEngine::Outputs;

  /// Attach with engine.set_repair_handler(&repair). `env` must be the
  /// runtime the engine runs on; `cfg` is this broker's Repair section.
  RepairEngine(MobilityEngine& engine, RuntimeEnv& env, RepairConfig cfg);

  /// Schedules recurring sweeps (the first after cfg.start_delay, or one
  /// sweep_interval when unset) until simulated time `until`.
  void start(double until);

  /// One repair round: parked-transaction sweep, stale-shadow scan, orphan
  /// scan, quench reconciliation, neighbour digests. Public so tests can
  /// drive rounds manually. Emits via the engine's transmit hook.
  void sweep();

  // RepairHandler: digests / re-send requests / verdicts arriving at this
  // broker (probes are answered by the engine itself).
  void on_repair(BrokerId from, const Message& msg, Outputs& out) override;

  const RepairStats& stats() const { return stats_; }
  const RepairConfig& config() const { return cfg_; }
  BrokerId broker_id() const;

  /// Session-layer knowledge about a client-hop routing entry, consulted by
  /// the orphan sweep: 0 = none (default confirm_rounds aging), 1 = live
  /// session (veto retraction while its grace window runs), 2 = expired
  /// session (retract immediately, skipping the aging).
  using SessionProbe = std::function<int(ClientId)>;
  void set_session_probe(SessionProbe probe) { session_probe_ = std::move(probe); }

 private:
  std::size_t sweep_shadows(double now, Outputs& out);
  std::size_t sweep_orphans(Outputs& out);
  std::size_t sweep_quench(Outputs& out);
  void send_digests(Outputs& out);
  void on_digest(BrokerId from, const RepairDigestMsg& m, Outputs& out);
  void on_request(BrokerId from, const RepairRequestMsg& m, Outputs& out);
  void on_verdict(const RepairVerdictMsg& v, Outputs& out);
  /// Records `n` corrective actions (ops counter + convergence watermark).
  void note_ops(std::uint64_t n);
  void schedule_next(double delay);

  MobilityEngine* engine_;
  Broker* broker_;
  RuntimeEnv* env_;
  obs::Tracer* tracer_;
  RepairConfig cfg_;
  double until_ = 0;
  RepairStats stats_;
  SessionProbe session_probe_;
  obs::Counter* rounds_ctr_ = nullptr;
  obs::Counter* ops_ctr_ = nullptr;
  /// First time each transaction's shadow state was seen locally; entries
  /// for resolved transactions are pruned every sweep.
  std::map<TxnId, double> shadow_seen_;
  /// Suspicion ages for destructive repairs (consecutive sweeps/digests the
  /// divergence persisted).
  std::map<SubscriptionId, std::uint32_t> orphan_sub_rounds_;
  std::map<AdvertisementId, std::uint32_t> orphan_adv_rounds_;
  std::map<SubscriptionId, std::uint32_t> digest_sub_rounds_;
  std::map<AdvertisementId, std::uint32_t> digest_adv_rounds_;
};

}  // namespace tmps::repair
