#include "repair/repair_engine.h"

#include <set>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "routing/routing_tables.h"

namespace tmps::repair {

namespace {

std::string entity_str(const EntityId& id) {
  return std::to_string(id.client) + ":" + std::to_string(id.seq);
}

}  // namespace

RepairEngine::RepairEngine(MobilityEngine& engine, RuntimeEnv& env,
                           RepairConfig cfg)
    : engine_(&engine),
      broker_(&engine.broker()),
      env_(&env),
      tracer_(env.tracer()),
      cfg_(cfg) {
  if (obs::MetricsRegistry* mr = env_->metrics()) {
    const obs::Labels labels = {{"broker", std::to_string(broker_->id())}};
    rounds_ctr_ = &mr->counter("tmps_repair_rounds", labels);
    ops_ctr_ = &mr->counter("tmps_repair_ops_total", labels);
  }
}

BrokerId RepairEngine::broker_id() const { return broker_->id(); }

void RepairEngine::start(double until) {
  until_ = until;
  schedule_next(cfg_.start_delay > 0 ? cfg_.start_delay : cfg_.sweep_interval);
}

void RepairEngine::schedule_next(double delay) {
  env_->schedule(delay, [this] {
    if (env_->now() > until_) return;
    sweep();
    schedule_next(cfg_.sweep_interval);
  });
}

void RepairEngine::note_ops(std::uint64_t n) {
  if (n == 0) return;
  stats_.ops_total += n;
  stats_.last_op_time = env_->now();
  stats_.last_op_round = stats_.rounds;
  if (ops_ctr_) ops_ctr_->inc(n);
}

void RepairEngine::sweep() {
  ++stats_.rounds;
  if (rounds_ctr_) rounds_ctr_->inc();
  const double now = env_->now();
  Outputs out;
  std::size_t ops = 0;
  const std::size_t parked =
      engine_->repair_sweep_parked(cfg_.stale_after, out);
  stats_.parked_ops += parked;
  ops += parked;
  ops += sweep_shadows(now, out);
  ops += sweep_orphans(out);
  if (cfg_.reconcile_quench) ops += sweep_quench(out);
  if (cfg_.digest_every > 0 && stats_.rounds % cfg_.digest_every == 0) {
    send_digests(out);
  }
  note_ops(ops);
  TMPS_EVENT(tracer_, kNoTxn, "repair:round",
             {{"broker", std::to_string(broker_->id())},
              {"round", std::to_string(stats_.rounds)},
              {"ops", std::to_string(ops)}});
  engine_->emit(std::move(out));
}

void RepairEngine::on_repair(BrokerId from, const Message& msg, Outputs& out) {
  if (const auto* d = std::get_if<RepairDigestMsg>(&msg.payload)) {
    on_digest(from, *d, out);
  } else if (const auto* r = std::get_if<RepairRequestMsg>(&msg.payload)) {
    on_request(from, *r, out);
  } else if (const auto* v = std::get_if<RepairVerdictMsg>(&msg.payload)) {
    on_verdict(*v, out);
  }
}

// --- stale shadow state ----------------------------------------------------------

std::size_t RepairEngine::sweep_shadows(double now, Outputs& out) {
  RoutingTables& rt = broker_->tables();
  std::set<TxnId> live;
  for (const auto& [id, e] : rt.prt()) {
    if (e.shadow_txn != kNoTxn) live.insert(e.shadow_txn);
  }
  for (const auto& [id, e] : rt.srt()) {
    if (e.shadow_txn != kNoTxn) live.insert(e.shadow_txn);
  }
  std::erase_if(shadow_seen_,
                [&live](const auto& kv) { return !live.contains(kv.first); });
  stats_.suspect_shadows = live.size();

  std::size_t ops = 0;
  for (const TxnId txn : live) {
    const auto [it, fresh] = shadow_seen_.emplace(txn, now);
    if (fresh) continue;  // first sighting: start aging
    if (now - it->second < cfg_.stale_after) continue;

    const auto coord = static_cast<BrokerId>(txn >> 40);
    if (coord == broker_->id()) {
      // This broker coordinates the transaction: resolve from the local
      // record. InFlight means it is parked here and repair_sweep_parked is
      // already driving it.
      RepairVerdictMsg v = engine_->resolve_txn(txn);
      if (v.verdict == RepairVerdict::InFlight) continue;
      TMPS_EVENT(tracer_, txn, "repair:verdict",
                 {{"broker", std::to_string(broker_->id())},
                  {"verdict", to_string(v.verdict)},
                  {"origin", "local"}});
      engine_->repair_resolve_txn(v, out);
      ++stats_.verdicts_applied;
      ++ops;
      continue;
    }
    // Probe the coordinator; the sweep period is the retry backoff.
    TMPS_EVENT(tracer_, txn, "repair:probe-shadow",
               {{"broker", std::to_string(broker_->id())},
                {"coordinator", std::to_string(coord)}});
    RepairProbeMsg p;
    p.txn = txn;
    p.asker = broker_->id();
    broker_->send_unicast(coord, p, txn, out);
    ++stats_.probes_sent;
    ++ops;
  }
  return ops;
}

// --- orphaned client state -------------------------------------------------------

std::size_t RepairEngine::sweep_orphans(Outputs& out) {
  RoutingTables& rt = broker_->tables();
  std::vector<std::pair<SubscriptionId, Hop>> dead_subs;
  std::vector<std::pair<AdvertisementId, Hop>> dead_advs;
  std::set<SubscriptionId> suspect_subs;
  std::set<AdvertisementId> suspect_advs;

  for (const auto& [id, e] : rt.prt()) {
    if (!e.lasthop.is_client()) continue;
    if (e.shadow_txn != kNoTxn || e.shadow_only) continue;
    if (engine_->find_client(e.lasthop.client) != nullptr) continue;
    // The session layer knows more than hosting alone: a detached session
    // inside its grace window vetoes retraction, an expired one skips the
    // confirm_rounds aging.
    const int hint = session_probe_ ? session_probe_(e.lasthop.client) : 0;
    if (hint == 1) continue;
    suspect_subs.insert(id);
    if (hint != 2 && ++orphan_sub_rounds_[id] < cfg_.confirm_rounds) continue;
    dead_subs.emplace_back(id, e.lasthop);
  }
  for (const auto& [id, e] : rt.srt()) {
    if (!e.lasthop.is_client()) continue;
    if (e.shadow_txn != kNoTxn || e.shadow_only) continue;
    if (engine_->find_client(e.lasthop.client) != nullptr) continue;
    const int hint = session_probe_ ? session_probe_(e.lasthop.client) : 0;
    if (hint == 1) continue;
    suspect_advs.insert(id);
    if (hint != 2 && ++orphan_adv_rounds_[id] < cfg_.confirm_rounds) continue;
    dead_advs.emplace_back(id, e.lasthop);
  }
  // Entries that stopped being suspicious (client reappeared mid-movement,
  // entry removed) lose their age.
  std::erase_if(orphan_sub_rounds_, [&suspect_subs](const auto& kv) {
    return !suspect_subs.contains(kv.first);
  });
  std::erase_if(orphan_adv_rounds_, [&suspect_advs](const auto& kv) {
    return !suspect_advs.contains(kv.first);
  });

  for (const auto& [id, hop] : dead_subs) {
    orphan_sub_rounds_.erase(id);
    TMPS_EVENT(tracer_, kNoTxn, "repair:orphan-retract",
               {{"broker", std::to_string(broker_->id())},
                {"sub", entity_str(id)}});
    broker_->inject_unsubscribe(hop, id, kNoTxn, out);
    ++stats_.orphans_retracted;
  }
  for (const auto& [id, hop] : dead_advs) {
    orphan_adv_rounds_.erase(id);
    TMPS_EVENT(tracer_, kNoTxn, "repair:orphan-retract",
               {{"broker", std::to_string(broker_->id())},
                {"adv", entity_str(id)}});
    broker_->inject_unadvertise(hop, id, kNoTxn, out);
    ++stats_.orphans_retracted;
  }
  return dead_subs.size() + dead_advs.size();
}

// --- quench / un-quench reconciliation -------------------------------------------

std::size_t RepairEngine::sweep_quench(Outputs& out) {
  RoutingTables& rt = broker_->tables();
  const BrokerConfig& bc = broker_->config();
  std::size_t ops = 0;
  for (const BrokerId n : broker_->overlay().neighbors(broker_->id())) {
    const Hop link = Hop::of_broker(n);

    // Subscriptions the SRT says must flow over `link` (an advertisement
    // from that direction intersects) but that were never forwarded and are
    // not covered there: quench drift left by a reconfiguration hand-off.
    std::vector<SubscriptionId> missing_subs;
    for (const auto& [id, e] : rt.prt()) {
      if (e.shadow_only || e.shadow_txn != kNoTxn) continue;
      if (e.lasthop == link) continue;
      if (e.forwarded_to.contains(link)) continue;
      if (!rt.link_needed_for(e.sub.filter, link)) continue;
      if (bc.subscription_covering &&
          rt.sub_covered_on_link(id, e.sub.filter, link)) {
        continue;
      }
      missing_subs.push_back(id);
    }
    // Advertisement analogue: advs flood every link except their lasthop
    // unless covered there.
    std::vector<AdvertisementId> missing_advs;
    for (const auto& [id, e] : rt.srt()) {
      if (e.shadow_only || e.shadow_txn != kNoTxn) continue;
      if (e.lasthop == link) continue;
      if (e.forwarded_to.contains(link)) continue;
      if (bc.advertisement_covering &&
          rt.adv_covered_on_link(id, e.adv.filter, link)) {
        continue;
      }
      missing_advs.push_back(id);
    }

    for (const auto& id : missing_subs) {
      SubEntry* e = rt.find_sub(id);
      if (!e) continue;
      e->forwarded_to.insert(link);
      Message wire;
      wire.id = broker_->next_message_id();
      wire.payload = SubscribeMsg{e->sub};
      out.emplace_back(n, std::move(wire));
      TMPS_EVENT(tracer_, kNoTxn, "repair:unquench",
                 {{"broker", std::to_string(broker_->id())},
                  {"sub", entity_str(id)},
                  {"link", std::to_string(n)}});
      ++stats_.unquenches;
      ++ops;
    }
    for (const auto& id : missing_advs) {
      AdvEntry* e = rt.find_adv(id);
      if (!e) continue;
      e->forwarded_to.insert(link);
      Message wire;
      wire.id = broker_->next_message_id();
      wire.payload = AdvertiseMsg{e->adv};
      out.emplace_back(n, std::move(wire));
      TMPS_EVENT(tracer_, kNoTxn, "repair:unquench",
                 {{"broker", std::to_string(broker_->id())},
                  {"adv", entity_str(id)},
                  {"link", std::to_string(n)}});
      ++stats_.unquenches;
      ++ops;
    }
  }
  return ops;
}

// --- neighbour digests -----------------------------------------------------------

void RepairEngine::send_digests(Outputs& out) {
  RoutingTables& rt = broker_->tables();
  for (const BrokerId n : broker_->overlay().neighbors(broker_->id())) {
    const Hop link = Hop::of_broker(n);
    RepairDigestMsg d;
    d.round = stats_.rounds;
    d.origin = broker_->id();
    for (const auto& [id, e] : rt.prt()) {
      if (e.shadow_txn != kNoTxn || e.shadow_only) {
        // Mid-movement the neighbour's committed copy may already point
        // here while ours is still a shadow; the in-flight list vetoes its
        // orphan aging without claiming a forward we never made.
        d.in_flight_subs.push_back(id);
        if (e.shadow_only) continue;
      }
      if (e.forwarded_to.contains(link)) d.sub_ids.push_back(id);
    }
    for (const auto& [id, e] : rt.srt()) {
      if (e.shadow_txn != kNoTxn || e.shadow_only) {
        d.in_flight_advs.push_back(id);
        if (e.shadow_only) continue;
      }
      if (e.forwarded_to.contains(link)) d.adv_ids.push_back(id);
    }
    // Empty digests still go out: "I forward nothing to you" is exactly the
    // claim that lets the neighbour age its orphans.
    broker_->send_unicast(n, std::move(d), kNoTxn, out);
  }
}

void RepairEngine::on_digest(BrokerId from, const RepairDigestMsg& m,
                             Outputs& out) {
  RoutingTables& rt = broker_->tables();
  const Hop link = Hop::of_broker(from);

  // Claimed entries this broker lacks: the forward was lost. Additive and
  // idempotent, so request a re-send immediately.
  RepairRequestMsg req;
  req.round = m.round;
  req.origin = broker_->id();
  for (const auto& id : m.sub_ids) {
    if (rt.find_sub(id) == nullptr) req.sub_ids.push_back(id);
  }
  for (const auto& id : m.adv_ids) {
    if (rt.find_adv(id) == nullptr) req.adv_ids.push_back(id);
  }
  if (!req.sub_ids.empty() || !req.adv_ids.empty()) {
    const std::uint64_t n = req.sub_ids.size() + req.adv_ids.size();
    stats_.reissues_requested += n;
    TMPS_EVENT(tracer_, kNoTxn, "repair:request",
               {{"broker", std::to_string(broker_->id())},
                {"from", std::to_string(from)},
                {"entries", std::to_string(n)}});
    broker_->send_unicast(from, std::move(req), kNoTxn, out);
    note_ops(n);
  }

  // Entries whose lasthop is the sender but which the sender no longer
  // claims: orphans of an interrupted movement. Destructive, so aged across
  // confirm_rounds digests.
  const std::set<SubscriptionId> claimed_subs(m.sub_ids.begin(),
                                              m.sub_ids.end());
  const std::set<AdvertisementId> claimed_advs(m.adv_ids.begin(),
                                               m.adv_ids.end());
  const std::set<SubscriptionId> in_flight_subs(m.in_flight_subs.begin(),
                                                m.in_flight_subs.end());
  const std::set<AdvertisementId> in_flight_advs(m.in_flight_advs.begin(),
                                                 m.in_flight_advs.end());
  std::vector<SubscriptionId> dead_subs;
  std::vector<AdvertisementId> dead_advs;
  for (const auto& [id, e] : rt.prt()) {
    if (e.lasthop != link) continue;
    if (e.shadow_txn != kNoTxn || e.shadow_only) continue;
    if (claimed_subs.contains(id) || in_flight_subs.contains(id)) {
      digest_sub_rounds_.erase(id);
      continue;
    }
    if (++digest_sub_rounds_[id] < cfg_.confirm_rounds) continue;
    dead_subs.push_back(id);
  }
  for (const auto& [id, e] : rt.srt()) {
    if (e.lasthop != link) continue;
    if (e.shadow_txn != kNoTxn || e.shadow_only) continue;
    if (claimed_advs.contains(id) || in_flight_advs.contains(id)) {
      digest_adv_rounds_.erase(id);
      continue;
    }
    if (++digest_adv_rounds_[id] < cfg_.confirm_rounds) continue;
    dead_advs.push_back(id);
  }
  for (const auto& id : dead_subs) {
    digest_sub_rounds_.erase(id);
    TMPS_EVENT(tracer_, kNoTxn, "repair:digest-retract",
               {{"broker", std::to_string(broker_->id())},
                {"sub", entity_str(id)},
                {"from", std::to_string(from)}});
    broker_->inject_unsubscribe(link, id, kNoTxn, out);
    ++stats_.digest_retracts;
  }
  for (const auto& id : dead_advs) {
    digest_adv_rounds_.erase(id);
    TMPS_EVENT(tracer_, kNoTxn, "repair:digest-retract",
               {{"broker", std::to_string(broker_->id())},
                {"adv", entity_str(id)},
                {"from", std::to_string(from)}});
    broker_->inject_unadvertise(link, id, kNoTxn, out);
    ++stats_.digest_retracts;
  }
  note_ops(dead_subs.size() + dead_advs.size());
}

void RepairEngine::on_request(BrokerId from, const RepairRequestMsg& m,
                              Outputs& out) {
  RoutingTables& rt = broker_->tables();
  const Hop link = Hop::of_broker(from);
  std::uint64_t served = 0;
  for (const auto& id : m.sub_ids) {
    SubEntry* e = rt.find_sub(id);
    if (!e || e->shadow_only || !e->forwarded_to.contains(link)) continue;
    Message wire;
    wire.id = broker_->next_message_id();
    wire.payload = SubscribeMsg{e->sub};
    out.emplace_back(from, std::move(wire));
    ++served;
  }
  for (const auto& id : m.adv_ids) {
    AdvEntry* e = rt.find_adv(id);
    if (!e || e->shadow_only || !e->forwarded_to.contains(link)) continue;
    Message wire;
    wire.id = broker_->next_message_id();
    wire.payload = AdvertiseMsg{e->adv};
    out.emplace_back(from, std::move(wire));
    ++served;
  }
  if (served > 0) {
    stats_.reissues_served += served;
    TMPS_EVENT(tracer_, kNoTxn, "repair:reissue",
               {{"broker", std::to_string(broker_->id())},
                {"to", std::to_string(from)},
                {"entries", std::to_string(served)}});
    note_ops(served);
  }
}

void RepairEngine::on_verdict(const RepairVerdictMsg& v, Outputs& out) {
  if (v.verdict == RepairVerdict::InFlight) return;
  TMPS_EVENT(tracer_, v.txn, "repair:verdict",
             {{"broker", std::to_string(broker_->id())},
              {"verdict", to_string(v.verdict)},
              {"origin", "probe"}});
  ++stats_.verdicts_applied;
  note_ops(1);
  engine_->repair_resolve_txn(v, out);
}

}  // namespace tmps::repair
