// Scenario glue for the repair loop, mirroring control/scenario_control:
// chains onto ScenarioConfig::post_engines so that when
// `cfg.broker.repair.enabled` is set (or TMPS_REPAIR=1), every broker gets a
// RepairEngine attached to its mobility engine with sweeps running for the
// scenario's duration.
#pragma once

#include <memory>
#include <vector>

#include "core/scenario.h"
#include "repair/repair_engine.h"

namespace tmps::repair {

/// Owns the per-broker repair engines for one Scenario run. Keep the handle
/// alive for the lifetime of the Scenario (the engines hold pointers into
/// it); it is also how benches/tests read per-broker RepairStats afterwards.
struct RepairHandle {
  std::vector<std::unique_ptr<RepairEngine>> engines;

  RepairEngine* engine_of(BrokerId b) const {
    for (const auto& e : engines) {
      if (e->broker_id() == b) return e.get();
    }
    return nullptr;
  }
};

/// Installs the repair loop into `cfg` (composable with install_balancer and
/// any existing post_engines hook). No-op at run time unless
/// cfg.broker.repair.enabled.
std::shared_ptr<RepairHandle> install_repair(ScenarioConfig& cfg);

}  // namespace tmps::repair
