// HTTP admin surface of the repair loop: a `/repair` route for the per-host
// HttpAdminServer (transport/http_admin.h) returning one JSON object with
// this broker's repair activity — rounds, corrective-op counts by kind, the
// convergence watermark (round/time of the last op) and the currently
// suspect shadow-transaction count.
//
// The numeric series (tmps_repair_rounds, tmps_repair_ops_total) already
// land in the host's MetricsRegistry, so /metrics and /timeseries expose
// them without extra wiring; this route adds the structured at-a-glance
// view probes and tests want.
#pragma once

#include <string>

#include "repair/repair_engine.h"
#include "transport/http_admin.h"

namespace tmps::repair {

/// Registers GET /repair on `server`. Call before server.start(); the
/// engine must outlive the server.
void install_admin_routes(HttpAdminServer& server, const RepairEngine& engine);

/// The /repair response body (exposed for tests).
std::string repair_json(const RepairEngine& engine);

}  // namespace tmps::repair
