#include "repair/repair_admin.h"

#include <sstream>

namespace tmps::repair {

std::string repair_json(const RepairEngine& engine) {
  const RepairStats& s = engine.stats();
  const RepairConfig& c = engine.config();
  std::ostringstream os;
  os << "{\"broker\":" << engine.broker_id()
     << ",\"sweep_interval\":" << c.sweep_interval
     << ",\"stale_after\":" << c.stale_after
     << ",\"confirm_rounds\":" << c.confirm_rounds
     << ",\"rounds\":" << s.rounds
     << ",\"ops_total\":" << s.ops_total
     << ",\"parked_ops\":" << s.parked_ops
     << ",\"probes_sent\":" << s.probes_sent
     << ",\"verdicts_applied\":" << s.verdicts_applied
     << ",\"orphans_retracted\":" << s.orphans_retracted
     << ",\"digest_retracts\":" << s.digest_retracts
     << ",\"reissues_requested\":" << s.reissues_requested
     << ",\"reissues_served\":" << s.reissues_served
     << ",\"unquenches\":" << s.unquenches
     << ",\"last_op_round\":" << s.last_op_round
     << ",\"last_op_time\":" << s.last_op_time
     << ",\"suspect_shadows\":" << s.suspect_shadows << "}";
  return os.str();
}

void install_admin_routes(HttpAdminServer& server,
                          const RepairEngine& engine) {
  server.add_route("/repair", [&engine] {
    HttpResponse resp;
    resp.content_type = "application/json";
    resp.body = repair_json(engine);
    return resp;
  });
}

}  // namespace tmps::repair
