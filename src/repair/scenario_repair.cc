#include "repair/scenario_repair.h"

namespace tmps::repair {

std::shared_ptr<RepairHandle> install_repair(ScenarioConfig& cfg) {
  auto handle = std::make_shared<RepairHandle>();
  auto prev_engines = std::move(cfg.post_engines);
  cfg.post_engines = [handle, prev_engines](Scenario& s) {
    if (prev_engines) prev_engines(s);
    const RepairConfig& rc = s.config().broker.repair;
    if (!rc.enabled) return;
    std::size_t idx = 0;
    for (const auto& [b, engine] : s.engines()) {
      RepairConfig per = rc;
      // Stagger the first sweep per broker so the fleet does not sweep (and
      // digest) in lockstep.
      per.start_delay = (rc.start_delay > 0 ? rc.start_delay
                                            : rc.sweep_interval) +
                        0.05 * static_cast<double>(idx);
      auto re = std::make_unique<RepairEngine>(*engine, s.net(), per);
      engine->set_repair_handler(re.get());
      re->start(s.config().duration);
      handle->engines.push_back(std::move(re));
      ++idx;
    }
  };
  return handle;
}

}  // namespace tmps::repair
