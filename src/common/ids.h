// Strongly-typed identifiers used across the system.
//
// Brokers are numbered within an overlay; clients are globally unique;
// subscriptions, advertisements and publications are identified by their
// issuing client plus a per-client sequence number, so ids remain stable
// while a client moves between brokers.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace tmps {

/// Identifies a broker within an overlay. Brokers are numbered 1..N to match
/// the paper's figures (Fig. 6 uses brokers 1..14).
using BrokerId = std::uint32_t;

/// Sentinel for "no broker" (e.g. the last hop of a locally attached client).
inline constexpr BrokerId kNoBroker = 0;

/// Globally unique client identifier.
using ClientId = std::uint64_t;

inline constexpr ClientId kNoClient = 0;

/// Identifier of a subscription, advertisement or publication: the issuing
/// client plus a per-client sequence number. Stable across client movement.
struct EntityId {
  ClientId client = kNoClient;
  std::uint32_t seq = 0;

  friend bool operator==(const EntityId&, const EntityId&) = default;
  friend auto operator<=>(const EntityId&, const EntityId&) = default;
};

using SubscriptionId = EntityId;
using AdvertisementId = EntityId;
using PublicationId = EntityId;

/// Unique id of a message in flight (for tracing and dedup).
using MessageId = std::uint64_t;

/// Movement-transaction identifier.
using TxnId = std::uint64_t;

inline constexpr TxnId kNoTxn = 0;

inline std::string to_string(const EntityId& id) {
  return std::to_string(id.client) + ":" + std::to_string(id.seq);
}

}  // namespace tmps

template <>
struct std::hash<tmps::EntityId> {
  std::size_t operator()(const tmps::EntityId& id) const noexcept {
    // Sequence numbers are small; fold them into the high bits of the client
    // hash to keep distinct (client, seq) pairs from colliding.
    return std::hash<std::uint64_t>{}(id.client * 0x9E3779B97F4A7C15ull +
                                      id.seq);
  }
};
