// Serialization of a broker's routing tables ("algorithmic state" in the
// paper's Sec. 3.5 terms). Together with the message journal this enables
// checkpoint/restore recovery: snapshot the tables, truncate the journal,
// and on restart restore the snapshot and replay only the journal tail.
#pragma once

#include <string>
#include <string_view>

#include "routing/routing_tables.h"

namespace tmps {

/// Serializes the full table state: PRT and SRT entries with last hops,
/// forwarded-to marks and any pending shadow state.
std::string snapshot_tables(const RoutingTables& tables);

/// Restores a snapshot into `tables` (which is cleared first). Returns
/// false — leaving `tables` empty — on malformed input.
bool restore_tables(std::string_view bytes, RoutingTables& tables);

}  // namespace tmps
