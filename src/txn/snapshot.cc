#include "txn/snapshot.h"

#include "pubsub/codec.h"

namespace tmps {
namespace {

constexpr std::uint32_t kMagic = 0x74535031;  // "tSP1"
constexpr std::uint32_t kMaxEntries = 1u << 22;

void encode_hop(Writer& w, const Hop& h) {
  w.u8(static_cast<std::uint8_t>(h.kind));
  w.u32(h.broker);
  w.u64(h.client);
}

bool decode_hop(Reader& r, Hop& h) {
  std::uint8_t kind;
  if (!r.u8(kind) || !r.u32(h.broker) || !r.u64(h.client)) return false;
  if (kind > static_cast<std::uint8_t>(Hop::Kind::Client)) return false;
  h.kind = static_cast<Hop::Kind>(kind);
  return true;
}

template <typename Entry>
void encode_entry_common(Writer& w, const Entry& e) {
  encode_hop(w, e.lasthop);
  w.u32(static_cast<std::uint32_t>(e.forwarded_to.size()));
  for (const Hop& h : e.forwarded_to) encode_hop(w, h);
  w.u8(e.shadow_lasthop ? 1 : 0);
  if (e.shadow_lasthop) {
    encode_hop(w, *e.shadow_lasthop);
    w.u64(e.shadow_txn);
  }
  w.u8(e.shadow_only ? 1 : 0);
}

template <typename Entry>
bool decode_entry_common(Reader& r, Entry& e) {
  if (!decode_hop(r, e.lasthop)) return false;
  std::uint32_t marks;
  if (!r.u32(marks) || marks > kMaxEntries) return false;
  for (std::uint32_t i = 0; i < marks; ++i) {
    Hop h;
    if (!decode_hop(r, h)) return false;
    e.forwarded_to.insert(h);
  }
  std::uint8_t has_shadow, shadow_only;
  if (!r.u8(has_shadow)) return false;
  if (has_shadow) {
    Hop h;
    std::uint64_t txn;
    if (!decode_hop(r, h) || !r.u64(txn)) return false;
    e.shadow_lasthop = h;
    e.shadow_txn = txn;
  }
  if (!r.u8(shadow_only)) return false;
  e.shadow_only = shadow_only != 0;
  return true;
}

}  // namespace

std::string snapshot_tables(const RoutingTables& tables) {
  Writer w;
  w.u32(kMagic);
  w.u32(static_cast<std::uint32_t>(tables.prt().size()));
  for (const auto& [id, e] : tables.prt()) {
    encode(w, e.sub);
    encode_entry_common(w, e);
  }
  w.u32(static_cast<std::uint32_t>(tables.srt().size()));
  for (const auto& [id, e] : tables.srt()) {
    encode(w, e.adv);
    encode_entry_common(w, e);
  }
  return w.take();
}

bool restore_tables(std::string_view bytes, RoutingTables& tables) {
  tables = RoutingTables{};
  Reader r(bytes);
  std::uint32_t magic, nsubs, nadvs;
  if (!r.u32(magic) || magic != kMagic) return false;
  if (!r.u32(nsubs) || nsubs > kMaxEntries) return false;
  for (std::uint32_t i = 0; i < nsubs; ++i) {
    Subscription sub;
    SubEntry scratch;
    if (!decode(r, sub) || !decode_entry_common(r, scratch)) {
      tables = RoutingTables{};
      return false;
    }
    SubEntry& e = tables.upsert_sub(sub, scratch.lasthop);
    e.forwarded_to = std::move(scratch.forwarded_to);
    e.shadow_lasthop = scratch.shadow_lasthop;
    e.shadow_txn = scratch.shadow_txn;
    e.shadow_only = scratch.shadow_only;
  }
  if (!r.u32(nadvs) || nadvs > kMaxEntries) {
    tables = RoutingTables{};
    return false;
  }
  for (std::uint32_t i = 0; i < nadvs; ++i) {
    Advertisement adv;
    AdvEntry scratch;
    if (!decode(r, adv) || !decode_entry_common(r, scratch)) {
      tables = RoutingTables{};
      return false;
    }
    AdvEntry& e = tables.upsert_adv(adv, scratch.lasthop);
    e.forwarded_to = std::move(scratch.forwarded_to);
    e.shadow_lasthop = scratch.shadow_lasthop;
    e.shadow_txn = scratch.shadow_txn;
    e.shadow_only = scratch.shadow_only;
  }
  if (!r.at_end()) {
    tables = RoutingTables{};
    return false;
  }
  return true;
}

}  // namespace tmps
