#include "txn/three_pc.h"

#include <algorithm>

namespace tmps {

const char* to_string(TpcCoordState s) {
  switch (s) {
    case TpcCoordState::Init: return "init";
    case TpcCoordState::Waiting: return "waiting";
    case TpcCoordState::PreCommit: return "precommit";
    case TpcCoordState::Committed: return "committed";
    case TpcCoordState::Aborted: return "aborted";
  }
  return "?";
}

const char* to_string(TpcPartState s) {
  switch (s) {
    case TpcPartState::Init: return "init";
    case TpcPartState::Ready: return "ready";
    case TpcPartState::PreCommitted: return "precommitted";
    case TpcPartState::Committed: return "committed";
    case TpcPartState::Aborted: return "aborted";
  }
  return "?";
}

const char* to_string(TpcMsg::Kind k) {
  switch (k) {
    case TpcMsg::Kind::CanCommit: return "canCommit";
    case TpcMsg::Kind::VoteYes: return "voteYes";
    case TpcMsg::Kind::VoteNo: return "voteNo";
    case TpcMsg::Kind::PreCommit: return "preCommit";
    case TpcMsg::Kind::AckPreCommit: return "ackPreCommit";
    case TpcMsg::Kind::DoCommit: return "doCommit";
    case TpcMsg::Kind::Abort: return "abort";
  }
  return "?";
}

// --- coordinator --------------------------------------------------------------

TpcCoordinator::TpcCoordinator(TxnId txn, std::vector<int> participants,
                               SendFn send, DecisionFn on_decision)
    : txn_(txn),
      participants_(std::move(participants)),
      send_(std::move(send)),
      on_decision_(std::move(on_decision)) {}

void TpcCoordinator::broadcast(TpcMsg::Kind kind) {
  for (const int p : participants_) {
    send_(p, TpcMsg{kind, txn_, -1});
  }
}

void TpcCoordinator::decide(TpcDecision d) {
  decision_ = d;
  state_ = d == TpcDecision::Commit ? TpcCoordState::Committed
                                    : TpcCoordState::Aborted;
  const char* outcome = d == TpcDecision::Commit ? "commit" : "abort";
  TMPS_SPAN_END(tracer_, phase_span_);
  phase_span_ = obs::kNoSpan;
  TMPS_SPAN_END(tracer_, txn_span_, {{"decision", outcome}});
  txn_span_ = obs::kNoSpan;
  broadcast(d == TpcDecision::Commit ? TpcMsg::Kind::DoCommit
                                     : TpcMsg::Kind::Abort);
  if (on_decision_) on_decision_(d);
}

void TpcCoordinator::start() {
  if (state_ != TpcCoordState::Init) return;
  txn_span_ = TMPS_SPAN_BEGIN(
      tracer_, txn_, "3pc", obs::kNoSpan,
      {{"participants", std::to_string(participants_.size())}});
  if (participants_.empty()) {
    state_ = TpcCoordState::Waiting;
    decide(TpcDecision::Commit);
    return;
  }
  state_ = TpcCoordState::Waiting;
  phase_span_ = TMPS_SPAN_BEGIN(tracer_, txn_, "3pc:prepare", txn_span_);
  broadcast(TpcMsg::Kind::CanCommit);
}

void TpcCoordinator::on_message(const TpcMsg& msg) {
  if (msg.txn != txn_) return;
  switch (state_) {
    case TpcCoordState::Waiting:
      if (msg.kind == TpcMsg::Kind::VoteNo) {
        decide(TpcDecision::Abort);
      } else if (msg.kind == TpcMsg::Kind::VoteYes) {
        votes_[msg.from] = true;
        if (votes_.size() == participants_.size()) {
          state_ = TpcCoordState::PreCommit;
          TMPS_SPAN_END(tracer_, phase_span_, {{"votes", "unanimous"}});
          phase_span_ =
              TMPS_SPAN_BEGIN(tracer_, txn_, "3pc:precommit", txn_span_);
          broadcast(TpcMsg::Kind::PreCommit);
        }
      }
      break;
    case TpcCoordState::PreCommit:
      if (msg.kind == TpcMsg::Kind::AckPreCommit) {
        acks_[msg.from] = true;
        if (acks_.size() == participants_.size()) {
          decide(TpcDecision::Commit);
        }
      }
      break;
    default:
      break;  // decided or not started; duplicates are ignored
  }
}

void TpcCoordinator::on_timeout() {
  switch (state_) {
    case TpcCoordState::Waiting:
      // Missing votes: safe to abort (nobody has pre-committed).
      decide(TpcDecision::Abort);
      break;
    case TpcCoordState::PreCommit:
      // Every participant voted yes and either saw preCommit (commits on its
      // own timeout) or is Ready and will learn the decision on recovery:
      // commit.
      decide(TpcDecision::Commit);
      break;
    default:
      break;
  }
}

// --- participant --------------------------------------------------------------

TpcParticipant::TpcParticipant(int id, SendFn send, VoteFn vote,
                               DecisionFn on_decision)
    : id_(id),
      send_(std::move(send)),
      vote_(std::move(vote)),
      on_decision_(std::move(on_decision)) {}

void TpcParticipant::decide(TpcDecision d) {
  decision_ = d;
  state_ = d == TpcDecision::Commit ? TpcPartState::Committed
                                    : TpcPartState::Aborted;
  if (on_decision_) on_decision_(d);
}

void TpcParticipant::on_message(const TpcMsg& msg) {
  switch (msg.kind) {
    case TpcMsg::Kind::CanCommit:
      if (state_ != TpcPartState::Init) break;
      if (vote_ && !vote_(msg.txn)) {
        send_(TpcMsg{TpcMsg::Kind::VoteNo, msg.txn, id_});
        decide(TpcDecision::Abort);
      } else {
        state_ = TpcPartState::Ready;
        send_(TpcMsg{TpcMsg::Kind::VoteYes, msg.txn, id_});
      }
      break;
    case TpcMsg::Kind::PreCommit:
      if (state_ == TpcPartState::Ready) {
        state_ = TpcPartState::PreCommitted;
        send_(TpcMsg{TpcMsg::Kind::AckPreCommit, msg.txn, id_});
      }
      break;
    case TpcMsg::Kind::DoCommit:
      if (state_ == TpcPartState::Ready ||
          state_ == TpcPartState::PreCommitted) {
        decide(TpcDecision::Commit);
      }
      break;
    case TpcMsg::Kind::Abort:
      if (state_ != TpcPartState::Committed) decide(TpcDecision::Abort);
      break;
    default:
      break;  // coordinator-bound kinds
  }
}

void TpcParticipant::on_timeout() {
  switch (state_) {
    case TpcPartState::Ready:
      // Uncertain, never saw preCommit: with bounded delays the coordinator
      // must have aborted (it would otherwise have sent preCommit in time).
      decide(TpcDecision::Abort);
      break;
    case TpcPartState::PreCommitted:
      // preCommit means every participant voted yes; the decision can only
      // be commit.
      decide(TpcDecision::Commit);
      break;
    default:
      break;
  }
}

}  // namespace tmps
