#include "txn/persistent_queue.h"

#include <array>
#include <cstring>
#include <stdexcept>

namespace tmps {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t len) {
  static const auto table = make_crc_table();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i) {
    c = table[(c ^ p[i]) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

std::vector<std::pair<std::uint64_t, std::string>> scan_journal(
    const std::filesystem::path& dir) {
  std::vector<std::pair<std::uint64_t, std::string>> out;
  std::ifstream in(dir / "journal.log", std::ios::binary);
  while (in) {
    std::uint64_t seq = 0;
    std::uint32_t len = 0, crc = 0;
    in.read(reinterpret_cast<char*>(&seq), sizeof(seq));
    in.read(reinterpret_cast<char*>(&len), sizeof(len));
    in.read(reinterpret_cast<char*>(&crc), sizeof(crc));
    if (!in) break;
    std::string payload(len, '\0');
    in.read(payload.data(), len);
    if (!in) break;
    if (crc32(payload.data(), len) != crc) break;
    out.emplace_back(seq, std::move(payload));
  }
  return out;
}

PersistentQueue::PersistentQueue(std::filesystem::path dir)
    : dir_(std::move(dir)),
      journal_path_(dir_ / "journal.log"),
      consumed_path_(dir_ / "consumed") {
  std::filesystem::create_directories(dir_);
  recover();
  journal_.open(journal_path_, std::ios::binary | std::ios::app);
  if (!journal_) {
    throw std::runtime_error("cannot open journal: " + journal_path_.string());
  }
}

PersistentQueue::~PersistentQueue() = default;

void PersistentQueue::recover() {
  // Consumed marker first: records at or below it are dropped on replay.
  if (std::ifstream in{consumed_path_, std::ios::binary}; in) {
    in.read(reinterpret_cast<char*>(&consumed_seq_), sizeof(consumed_seq_));
    if (!in) consumed_seq_ = 0;
  }

  std::ifstream in(journal_path_, std::ios::binary);
  while (in) {
    std::uint64_t seq = 0;
    std::uint32_t len = 0, crc = 0;
    in.read(reinterpret_cast<char*>(&seq), sizeof(seq));
    in.read(reinterpret_cast<char*>(&len), sizeof(len));
    in.read(reinterpret_cast<char*>(&crc), sizeof(crc));
    if (!in) break;  // clean EOF or torn header
    std::string payload(len, '\0');
    in.read(payload.data(), len);
    if (!in) break;                                 // torn payload
    if (crc32(payload.data(), len) != crc) break;   // corrupt tail
    if (seq >= next_seq_) next_seq_ = seq + 1;
    if (seq > consumed_seq_) live_.emplace_back(seq, std::move(payload));
  }
}

namespace {

void write_record(std::ofstream& out, std::uint64_t seq,
                  std::string_view record) {
  const auto len = static_cast<std::uint32_t>(record.size());
  const std::uint32_t crc = crc32(record.data(), record.size());
  out.write(reinterpret_cast<const char*>(&seq), sizeof(seq));
  out.write(reinterpret_cast<const char*>(&len), sizeof(len));
  out.write(reinterpret_cast<const char*>(&crc), sizeof(crc));
  out.write(record.data(), static_cast<std::streamsize>(record.size()));
}

}  // namespace

void PersistentQueue::push(std::string_view record) {
  const std::uint64_t seq = next_seq_++;
  write_record(journal_, seq, record);
  journal_.flush();
  live_.emplace_back(seq, std::string(record));
}

std::optional<std::string> PersistentQueue::front() const {
  if (live_.empty()) return std::nullopt;
  return live_.front().second;
}

void PersistentQueue::write_consumed_marker() {
  const auto tmp = consumed_path_.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(&consumed_seq_),
              sizeof(consumed_seq_));
  }
  std::filesystem::rename(tmp, consumed_path_);
}

void PersistentQueue::pop() {
  if (live_.empty()) throw std::out_of_range("pop from empty PersistentQueue");
  consumed_seq_ = live_.front().first;
  live_.pop_front();
  write_consumed_marker();
}

void PersistentQueue::sync() { journal_.flush(); }

void PersistentQueue::compact() {
  journal_.close();
  const auto tmp = journal_path_.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    for (const auto& [seq, payload] : live_) write_record(out, seq, payload);
  }
  std::filesystem::rename(tmp, journal_path_);
  journal_.open(journal_path_, std::ios::binary | std::ios::app);
}

}  // namespace tmps
