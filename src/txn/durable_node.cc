#include "txn/durable_node.h"

#include <fstream>

#include "txn/snapshot.h"

namespace tmps {

DurableNode::DurableNode(BrokerId id, const Overlay* overlay,
                         std::filesystem::path dir, BrokerConfig cfg)
    : dir_(std::move(dir)),
      broker_(std::make_unique<Broker>(id, overlay, cfg)),
      queue_(dir_) {}

std::string DurableNode::encode_envelope(BrokerId from, const Message& msg) {
  Writer w;
  w.u32(from);
  w.str(encode_message(msg));
  return w.take();
}

bool DurableNode::decode_envelope(const std::string& bytes, BrokerId& from,
                                  Message& msg) {
  Reader r(bytes);
  std::string inner;
  if (!r.u32(from) || !r.str(inner) || !r.at_end()) return false;
  auto m = decode_message(inner);
  if (!m) return false;
  msg = std::move(*m);
  return true;
}

Broker::Outputs DurableNode::deliver(BrokerId from, const Message& msg) {
  queue_.push(encode_envelope(from, msg));
  Broker::Outputs out = broker_->on_message(from, msg);
  queue_.pop();  // durably retired only after processing completed
  return out;
}

void DurableNode::journal_only(BrokerId from, const Message& msg) {
  queue_.push(encode_envelope(from, msg));
}

Broker::Outputs DurableNode::recover() {
  // Restore the latest checkpoint, if one exists and parses. Records at or
  // below its sequence are already reflected in the snapshot.
  std::uint64_t snap_seq = 0;
  if (std::ifstream in{snapshot_path(), std::ios::binary}; in) {
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    Reader r(bytes);
    std::uint64_t seq = 0;
    std::string tables_bytes;
    if (r.u64(seq) && r.str(tables_bytes) && r.at_end() &&
        restore_tables(tables_bytes, broker_->tables())) {
      snap_seq = seq;
    } else {
      broker_->tables() = RoutingTables{};  // corrupt snapshot: full replay
    }
  }

  const auto history = scan_journal(dir_);
  const std::uint64_t consumed = queue_.consumed_seq();
  Broker::Outputs tail_outputs;
  for (const auto& [seq, bytes] : history) {
    if (seq <= snap_seq) continue;  // already in the snapshot
    BrokerId from = kNoBroker;
    Message msg;
    if (!decode_envelope(bytes, from, msg)) continue;  // corrupt: skip
    Broker::Outputs out = broker_->on_message(from, msg);
    if (seq > consumed) {
      // Unprocessed tail: its outputs must (re)reach the network.
      for (auto& o : out) tail_outputs.push_back(std::move(o));
    }
    // else: history replay, outputs already sent before the crash.
  }
  // Retire the tail we just processed.
  while (!queue_.empty()) queue_.pop();
  return tail_outputs;
}

void DurableNode::checkpoint() {
  Writer w;
  w.u64(queue_.consumed_seq());
  w.str(snapshot_tables(broker_->tables()));
  const auto tmp = snapshot_path().string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    const std::string& bytes = w.bytes();
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  std::filesystem::rename(tmp, snapshot_path());
  // History at or below the checkpoint is no longer needed for recovery.
  queue_.compact();
}

}  // namespace tmps
