// A crash-recoverable broker node: the concrete realization of the paper's
// Sec. 3.5 fault-tolerance recipe — "a pub/sub protocol can be made fault-
// tolerant by persisting the algorithmic and queue state of each broker".
//
// Every incoming message is journaled (write-ahead) before processing and
// retired after. The journal is an event log: on restart the node rebuilds
// its routing tables deterministically by replaying the full history with
// outputs suppressed, then replays the unprocessed tail with outputs live.
// A crash between processing and retirement therefore re-emits that
// message's outputs — at-least-once, deduplicated downstream by the client
// stubs' exactly-once guard.
#pragma once

#include <filesystem>
#include <memory>

#include "broker/broker.h"
#include "pubsub/codec.h"
#include "txn/persistent_queue.h"

namespace tmps {

class DurableNode {
 public:
  /// Opens (and, if the directory holds history, recovers) a durable broker.
  /// Call recover() to obtain the outputs of any unprocessed tail.
  DurableNode(BrokerId id, const Overlay* overlay, std::filesystem::path dir,
              BrokerConfig cfg = {});

  Broker& broker() { return *broker_; }

  /// Journals, processes and retires one incoming message.
  Broker::Outputs deliver(BrokerId from, const Message& msg);

  /// Replays history: restores the latest checkpoint (if any), rebuilds the
  /// rest of the routing state silently, then processes the unprocessed tail
  /// and returns its outputs (possibly re-emitting outputs whose first
  /// transmission raced a crash).
  Broker::Outputs recover();

  /// Checkpoints the node: snapshots the routing tables ("algorithmic
  /// state") and truncates the journal to the unprocessed tail, bounding
  /// recovery time. Safe to call at any quiesce point.
  void checkpoint();

  /// Messages journaled but not yet retired.
  std::size_t backlog() const { return queue_.size(); }

  /// Test hook: journal a message *without* processing it — simulates a
  /// crash in the window between arrival and processing.
  void journal_only(BrokerId from, const Message& msg);

 private:
  static std::string encode_envelope(BrokerId from, const Message& msg);
  static bool decode_envelope(const std::string& bytes, BrokerId& from,
                              Message& msg);
  std::filesystem::path snapshot_path() const { return dir_ / "snapshot"; }

  std::filesystem::path dir_;
  std::unique_ptr<Broker> broker_;
  PersistentQueue queue_;
};

}  // namespace tmps
