// Three-phase commit (Skeen / Skeen & Stonebraker [21]), the distributed
// transaction protocol the paper's movement transaction is modelled on
// (Sec. 4.1). Implemented as host-agnostic state machines: the caller wires
// `send` callbacks to whatever transport it has and drives timeouts.
//
// Phases: canCommit? -> (votes) -> preCommit -> (acks) -> doCommit.
//
// Two operating modes, matching the paper's two network-failure models:
//  * non-blocking — with bounded message delay, timeout actions resolve
//    every transaction: a participant that voted yes but saw no preCommit
//    aborts; one that saw preCommit but no doCommit commits; the
//    coordinator aborts when votes are missing and commits once preCommit
//    was sent to everyone.
//  * blocking — without delay bounds, simply never drive the timeouts; the
//    protocol waits (and stays safe).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/ids.h"
#include "obs/trace.h"

namespace tmps {

enum class TpcDecision { Commit, Abort };

enum class TpcCoordState {
  Init,       // not started
  Waiting,    // canCommit sent, collecting votes
  PreCommit,  // all voted yes; preCommit sent, collecting acks
  Committed,
  Aborted,
};

enum class TpcPartState {
  Init,          // awaiting canCommit
  Ready,         // voted yes, uncertain
  PreCommitted,  // preCommit received, commit is inevitable
  Committed,
  Aborted,
};

const char* to_string(TpcCoordState s);
const char* to_string(TpcPartState s);

struct TpcMsg {
  enum class Kind {
    CanCommit,
    VoteYes,
    VoteNo,
    PreCommit,
    AckPreCommit,
    DoCommit,
    Abort,
  };
  Kind kind;
  TxnId txn = kNoTxn;
  int from = -1;  // participant id; -1 = coordinator

  friend bool operator==(const TpcMsg&, const TpcMsg&) = default;
};

const char* to_string(TpcMsg::Kind k);

class TpcCoordinator {
 public:
  /// `send(participant_id, msg)` delivers to one participant.
  using SendFn = std::function<void(int, const TpcMsg&)>;
  /// Called exactly once when the decision is reached.
  using DecisionFn = std::function<void(TpcDecision)>;

  TpcCoordinator(TxnId txn, std::vector<int> participants, SendFn send,
                 DecisionFn on_decision = nullptr);

  /// Sends canCommit to every participant.
  void start();

  void on_message(const TpcMsg& msg);

  /// Timeout action for the current state (non-blocking mode): Waiting ->
  /// abort (missing votes), PreCommit -> commit (every participant is at
  /// least Ready and will commit on its own timeout).
  void on_timeout();

  TpcCoordState state() const { return state_; }
  std::optional<TpcDecision> decision() const { return decision_; }
  TxnId txn() const { return txn_; }

  /// Optional tracing: a "3pc" span over the whole protocol run with child
  /// spans per phase (prepare = vote collection, precommit = ack collection).
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

 private:
  void broadcast(TpcMsg::Kind kind);
  void decide(TpcDecision d);

  TxnId txn_;
  std::vector<int> participants_;
  SendFn send_;
  DecisionFn on_decision_;
  obs::Tracer* tracer_ = nullptr;
  obs::SpanId txn_span_ = obs::kNoSpan;
  obs::SpanId phase_span_ = obs::kNoSpan;
  TpcCoordState state_ = TpcCoordState::Init;
  std::optional<TpcDecision> decision_;
  std::map<int, bool> votes_;
  std::map<int, bool> acks_;
};

class TpcParticipant {
 public:
  /// Sends a message to the coordinator.
  using SendFn = std::function<void(const TpcMsg&)>;
  /// Local vote: can this participant commit `txn`?
  using VoteFn = std::function<bool(TxnId)>;
  using DecisionFn = std::function<void(TpcDecision)>;

  TpcParticipant(int id, SendFn send, VoteFn vote,
                 DecisionFn on_decision = nullptr);

  void on_message(const TpcMsg& msg);

  /// Timeout action (non-blocking mode): Ready -> abort (uncertain, no
  /// preCommit seen), PreCommitted -> commit (decision was inevitable).
  void on_timeout();

  TpcPartState state() const { return state_; }
  std::optional<TpcDecision> decision() const { return decision_; }
  int id() const { return id_; }

 private:
  void decide(TpcDecision d);

  int id_;
  SendFn send_;
  VoteFn vote_;
  DecisionFn on_decision_;
  TpcPartState state_ = TpcPartState::Init;
  std::optional<TpcDecision> decision_;
};

}  // namespace tmps
