// A durable FIFO queue backed by a write-ahead journal.
//
// Sec. 3.5 of the paper sketches how a pub/sub routing layer is made
// fault-tolerant: "the queue state includes unprocessed incoming messages at
// a broker and undelivered outgoing messages. The reliable delivery of these
// messages between brokers can be achieved using persistent queues." This is
// that persistent queue.
//
// On-disk layout inside the queue directory:
//   journal.log — length-prefixed, CRC-protected records:
//                 [u64 seq][u32 len][u32 crc32][len bytes]
//   consumed    — last consumed sequence number (rewritten atomically via
//                 temp file + rename)
//
// Recovery tolerates a torn tail: the scan stops at the first short or
// corrupt record, which is exactly the crash-during-append case.
#pragma once

#include <cstdint>
#include <deque>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace tmps {

std::uint32_t crc32(const void* data, std::size_t len);

/// Reads every intact record (consumed or not) from a queue directory's
/// journal, stopping at the first torn/corrupt record. Used by event-sourced
/// recovery (DurableNode) to rebuild in-memory state from history.
std::vector<std::pair<std::uint64_t, std::string>> scan_journal(
    const std::filesystem::path& dir);

class PersistentQueue {
 public:
  /// Opens (and recovers) the queue stored in `dir`, creating it if needed.
  explicit PersistentQueue(std::filesystem::path dir);
  ~PersistentQueue();

  PersistentQueue(const PersistentQueue&) = delete;
  PersistentQueue& operator=(const PersistentQueue&) = delete;

  /// Appends a record to the journal and the in-memory tail.
  void push(std::string_view record);

  /// The oldest unconsumed record, if any.
  std::optional<std::string> front() const;

  /// Durably consumes the front record.
  void pop();

  std::size_t size() const { return live_.size(); }
  bool empty() const { return live_.empty(); }

  /// Flushes the journal to the OS (fsync-equivalent for the simulation's
  /// purposes: data survives process crash).
  void sync();

  /// Rewrites the journal dropping consumed records.
  void compact();

  std::uint64_t next_seq() const { return next_seq_; }
  std::uint64_t consumed_seq() const { return consumed_seq_; }

 private:
  void recover();
  void write_consumed_marker();

  std::filesystem::path dir_;
  std::filesystem::path journal_path_;
  std::filesystem::path consumed_path_;
  std::ofstream journal_;
  std::deque<std::pair<std::uint64_t, std::string>> live_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t consumed_seq_ = 0;
};

}  // namespace tmps
