#include "broker/broker.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <fstream>

namespace tmps {

// The flight recorder stores the payload variant index directly as its
// event kind; keep the two enumerations aligned.
static_assert(std::is_same_v<std::variant_alternative_t<
                                 static_cast<std::size_t>(
                                     obs::FlightKind::kAdvertise),
                                 Payload>,
              AdvertiseMsg>);
static_assert(std::is_same_v<std::variant_alternative_t<
                                 static_cast<std::size_t>(
                                     obs::FlightKind::kPublish),
                                 Payload>,
              PublishMsg>);
static_assert(std::is_same_v<std::variant_alternative_t<
                                 static_cast<std::size_t>(
                                     obs::FlightKind::kTradReject),
                                 Payload>,
              TradRejectMsg>);
static_assert(std::is_same_v<std::variant_alternative_t<
                                 static_cast<std::size_t>(
                                     obs::FlightKind::kRepairVerdict),
                                 Payload>,
              RepairVerdictMsg>);
static_assert(std::is_same_v<std::variant_alternative_t<
                                 static_cast<std::size_t>(
                                     obs::FlightKind::kSessionOpen),
                                 Payload>,
              SessionOpenMsg>);
static_assert(std::is_same_v<std::variant_alternative_t<
                                 static_cast<std::size_t>(
                                     obs::FlightKind::kSessionForward),
                                 Payload>,
              SessionForwardMsg>);
static_assert(static_cast<std::size_t>(obs::FlightKind::kSessionForward) + 1 ==
              std::variant_size_v<Payload>);

namespace {

/// Seconds with enough precision for sub-millisecond hop latencies
/// (std::to_string's fixed six decimals would flatten them to 0).
std::string fmt_secs(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

Broker::Broker(BrokerId id, const Overlay* overlay, BrokerConfig cfg)
    : id_(id), overlay_(overlay), cfg_(std::move(cfg)) {
  assert(overlay_ && overlay_->contains(id_));
  tables_.set_use_cover_index(cfg_.covering_index);
  tables_.set_use_forward_index(cfg_.forwarding_index);
  if (cfg_.obs.flight_capacity > 0) {
    flight_ = std::make_unique<obs::FlightRecorder>(cfg_.obs.flight_capacity);
  }
  if (cfg_.obs.profile) enable_profiling(cfg_.obs.profile_rate);
}

void Broker::enable_profiling(std::uint32_t rate) {
  if (!prof_) {
    prof_ = std::make_unique<obs::StageProfiler>(std::to_string(id_), rate);
    tables_.set_profiler(prof_.get());
  }
  prof_->set_enabled(true);
}

void Broker::disable_profiling() {
  tables_.set_profiler(nullptr);
  prof_.reset();
}

void Broker::set_observability(obs::Tracer* tracer,
                               obs::MetricsRegistry* metrics) {
  tracer_ = tracer;
  if (!metrics) {
    msgs_processed_ = covering_retracts_ = covering_unquenches_ = nullptr;
    pubs_processed_ = deliveries_ = nullptr;
    delivery_latency_ = delivery_latency_broker_ = nullptr;
    return;
  }
  const obs::Labels labels = {{"broker", std::to_string(id_)}};
  if (cfg_.obs.pub_provenance) {
    // Global + per-broker end-to-end delivery latency, fed from provenance
    // tags at the delivering (edge) broker.
    delivery_latency_ = &metrics->histogram("pub_delivery_latency_seconds");
    delivery_latency_broker_ =
        &metrics->histogram("broker_delivery_latency_seconds", labels);
  }
  msgs_processed_ = &metrics->counter("broker_messages_processed_total",
                                      labels);
  covering_retracts_ = &metrics->counter("broker_covering_retracts_total",
                                         labels);
  covering_unquenches_ = &metrics->counter("broker_covering_unquenches_total",
                                           labels);
  // Publication-load signals for the control plane (src/control): matching
  // passes plus local fan-out, the work that concentrates where clients do.
  pubs_processed_ = &metrics->counter("broker_publications_processed_total",
                                      labels);
  deliveries_ = &metrics->counter("broker_deliveries_total", labels);
}

MessageId Broker::next_message_id() {
  return (static_cast<MessageId>(id_) << 40) | ++msg_seq_;
}

void Broker::send(BrokerId to, Payload payload, TxnId cause, Outputs& out) {
  Message m;
  m.id = next_message_id();
  m.cause = cause;
  m.payload = std::move(payload);
  out.emplace_back(to, std::move(m));
}

// --- client entry points ----------------------------------------------------

Broker::Outputs Broker::client_subscribe(ClientId client,
                                         const Subscription& sub,
                                         TxnId cause) {
  Outputs out;
  do_subscribe(Hop::of_client(client), sub, cause, out);
  return out;
}

Broker::Outputs Broker::client_unsubscribe(ClientId client,
                                           const SubscriptionId& id,
                                           TxnId cause) {
  Outputs out;
  do_unsubscribe(Hop::of_client(client), id, cause, out);
  return out;
}

Broker::Outputs Broker::client_advertise(ClientId client,
                                         const Advertisement& adv,
                                         TxnId cause) {
  Outputs out;
  do_advertise(Hop::of_client(client), adv, cause, out);
  return out;
}

Broker::Outputs Broker::client_unadvertise(ClientId client,
                                           const AdvertisementId& id,
                                           TxnId cause) {
  Outputs out;
  do_unadvertise(Hop::of_client(client), id, cause, out);
  return out;
}

Broker::Outputs Broker::client_publish(ClientId client, const Publication& pub,
                                       TxnId cause) {
  Outputs out;
  if (flight_) {
    flight_->record(obs::FlightKind::kClientOp, clock_ ? clock_() : 0.0, 0,
                    cause, client);
  }
  do_publish(Hop::of_client(client), pub, cause, out);
  return out;
}

// --- injected operations (mobility layer) ------------------------------------

void Broker::inject_subscribe(Hop from, const Subscription& sub, TxnId cause,
                              std::vector<Output>& out) {
  do_subscribe(from, sub, cause, out);
}
void Broker::inject_unsubscribe(Hop from, const SubscriptionId& id,
                                TxnId cause, std::vector<Output>& out) {
  do_unsubscribe(from, id, cause, out);
}
void Broker::inject_advertise(Hop from, const Advertisement& adv, TxnId cause,
                              std::vector<Output>& out) {
  do_advertise(from, adv, cause, out);
}
void Broker::inject_unadvertise(Hop from, const AdvertisementId& id,
                                TxnId cause, std::vector<Output>& out) {
  do_unadvertise(from, id, cause, out);
}
void Broker::inject_publish(Hop from, const Publication& pub, TxnId cause,
                            std::vector<Output>& out) {
  do_publish(from, pub, cause, out);
}

std::vector<Hop> Broker::flood_links() const {
  std::vector<Hop> flood;
  for (const BrokerId n : overlay_->neighbors(id_)) {
    flood.push_back(Hop::of_broker(n));
  }
  return flood;
}

void Broker::inject_batch(std::vector<RoutingMutation> muts, TxnId cause,
                          std::vector<Output>& out) {
  TMPS_PROF_STAGE(prof_.get(), obs::Stage::kRouteUpdate);
  for (RoutingMutation& m : muts) {
    if (m.kind == RoutingMutation::Kind::kAddAdv && m.flood_links.empty()) {
      m.flood_links = flood_links();
    }
  }
  for (const RoutingDelta& d :
       tables_.apply_batch(muts, covering_policy())) {
    apply_delta(d, cause, out);
  }
}

// --- network input -----------------------------------------------------------

Broker::Outputs Broker::on_message(BrokerId from, const Message& msg) {
  Outputs out;
  if (msgs_processed_) msgs_processed_->inc();
  if (flight_) {
    flight_->record(static_cast<obs::FlightKind>(msg.payload.index()),
                    clock_ ? clock_() : 0.0, from, msg.cause, msg.id);
  }
  const Hop from_hop = Hop::of_broker(from);
  if (const auto* p = std::get_if<AdvertiseMsg>(&msg.payload)) {
    do_advertise(from_hop, p->adv, msg.cause, out);
  } else if (const auto* p = std::get_if<UnadvertiseMsg>(&msg.payload)) {
    do_unadvertise(from_hop, p->adv_id, msg.cause, out);
  } else if (const auto* p = std::get_if<SubscribeMsg>(&msg.payload)) {
    do_subscribe(from_hop, p->sub, msg.cause, out);
  } else if (const auto* p = std::get_if<UnsubscribeMsg>(&msg.payload)) {
    do_unsubscribe(from_hop, p->sub_id, msg.cause, out);
  } else if (const auto* p = std::get_if<PublishMsg>(&msg.payload)) {
    do_publish(from_hop, p->pub, msg.cause, out,
               msg.prov ? &*msg.prov : nullptr);
  } else if (control_) {
    TMPS_PROF_STAGE(prof_.get(), obs::Stage::kControl);
    control_->on_control(from, msg, out);
  } else if (msg.unicast_dest && *msg.unicast_dest != id_) {
    // No mobility layer attached: act as a plain relay for unicasts.
    forward_unicast(msg, out);
  }
  return out;
}

void Broker::send_unicast(BrokerId dest, Payload payload, TxnId cause,
                          std::vector<Output>& out) {
  Message m;
  m.id = next_message_id();
  m.cause = cause;
  m.unicast_dest = dest;
  m.payload = std::move(payload);
  if (dest == id_) {
    // Local delivery: hand straight to the control handler.
    assert(control_);
    control_->on_control(id_, m, out);
    return;
  }
  out.emplace_back(overlay_->next_hop(id_, dest), std::move(m));
}

void Broker::forward_unicast(const Message& msg, std::vector<Output>& out) {
  assert(msg.unicast_dest && *msg.unicast_dest != id_);
  out.emplace_back(overlay_->next_hop(id_, *msg.unicast_dest), msg);
}

void Broker::deliver_local(ClientId client, const Publication& pub) {
  // Untagged path (buffered-state redelivery, tests): no latency to observe.
  deliver_local(client, pub, nullptr, clock_ ? clock_() : 0.0);
}

void Broker::deliver_local(ClientId client, const Publication& pub,
                           const obs::ProvenanceTag* tag, double now) {
  TMPS_PROF_STAGE(prof_.get(), obs::Stage::kDeliver);
  if (deliveries_) deliveries_->inc();
  if (flight_) {
    flight_->record(obs::FlightKind::kDeliver, now, 0, 0, client);
  }
  if (tag != nullptr) {
    // End-to-end latency up to edge-broker arrival; publications intercepted
    // for a moving client are counted here too (the buffering wait is
    // movement latency, accounted by the movement records, not routing
    // latency).
    const double latency = now - tag->origin_time;
    if (delivery_latency_) delivery_latency_->observe(latency);
    if (delivery_latency_broker_) delivery_latency_broker_->observe(latency);
    if (latency_sink_) latency_sink_(latency);
    if (tag->sampled) {
      TMPS_EVENT(tracer_, tag->trace, "pub:deliver",
                 {{"broker", std::to_string(id_)},
                  {"client", std::to_string(client)},
                  {"pub", to_string(pub.id())},
                  {"latency", fmt_secs(latency)},
                  {"hops", std::to_string(tag->hops)}});
    }
  }
  if (control_ && control_->intercept_notification(client, pub)) return;
  if (notify_) notify_(client, pub);
}

void Broker::dump_flight(std::string_view reason) const {
  if (!flight_ || cfg_.obs.trace_dir.empty()) return;
  std::ofstream os(
      cfg_.obs.trace_dir + "/flight_b" + std::to_string(id_) + ".jsonl",
      std::ios::app);
  if (os) flight_->write_jsonl(os, id_, reason);
}

// --- routing handlers ----------------------------------------------------------

void Broker::apply_delta(const RoutingDelta& delta, TxnId cause, Outputs& out) {
  TMPS_PROF_STAGE(prof_.get(), obs::Stage::kDeltaApply);
  for (const RoutingOp& op : delta.ops) {
    switch (op.kind) {
      case RoutingOp::Kind::kForwardSub: {
        const SubEntry* e = tables_.find_sub(op.id);
        if (!e) break;  // ops reference live entries; defensive only
        send(op.link.broker, SubscribeMsg{e->sub}, cause, out);
        if (op.induced) {
          if (covering_unquenches_) covering_unquenches_->inc();
          if (cause != kNoTxn) {
            TMPS_EVENT(tracer_, cause, "covering:sub",
                       {{"broker", std::to_string(id_)},
                        {"link", std::to_string(op.link.broker)},
                        {"sub", to_string(op.id)}});
          }
        }
        break;
      }
      case RoutingOp::Kind::kRetractSub:
        send(op.link.broker, UnsubscribeMsg{op.id}, cause, out);
        if (op.induced) {
          if (covering_retracts_) covering_retracts_->inc();
          if (cause != kNoTxn) {
            TMPS_EVENT(tracer_, cause, "covering:unsub",
                       {{"broker", std::to_string(id_)},
                        {"link", std::to_string(op.link.broker)},
                        {"sub", to_string(op.id)}});
          }
        }
        break;
      case RoutingOp::Kind::kForwardAdv: {
        const AdvEntry* e = tables_.find_adv(op.id);
        if (!e) break;
        send(op.link.broker, AdvertiseMsg{e->adv}, cause, out);
        if (op.induced) {
          if (covering_unquenches_) covering_unquenches_->inc();
          if (cause != kNoTxn) {
            TMPS_EVENT(tracer_, cause, "covering:adv",
                       {{"broker", std::to_string(id_)},
                        {"link", std::to_string(op.link.broker)},
                        {"adv", to_string(op.id)}});
          }
        }
        break;
      }
      case RoutingOp::Kind::kRetractAdv:
        send(op.link.broker, UnadvertiseMsg{op.id}, cause, out);
        if (op.induced) {
          if (covering_retracts_) covering_retracts_->inc();
          if (cause != kNoTxn) {
            TMPS_EVENT(tracer_, cause, "covering:unadv",
                       {{"broker", std::to_string(id_)},
                        {"link", std::to_string(op.link.broker)},
                        {"adv", to_string(op.id)}});
          }
        }
        break;
    }
  }
}

void Broker::do_subscribe(Hop from, const Subscription& sub, TxnId cause,
                          Outputs& out) {
  TMPS_PROF_STAGE(prof_.get(), obs::Stage::kRouteUpdate);
  apply_delta(tables_.apply(RoutingMutation::add_sub(sub, from),
                            covering_policy()),
              cause, out);
}

void Broker::do_unsubscribe(Hop from, const SubscriptionId& id, TxnId cause,
                            Outputs& out) {
  TMPS_PROF_STAGE(prof_.get(), obs::Stage::kRouteUpdate);
  apply_delta(tables_.apply(RoutingMutation::remove_sub(id, from),
                            covering_policy()),
              cause, out);
}

void Broker::do_advertise(Hop from, const Advertisement& adv, TxnId cause,
                          Outputs& out) {
  TMPS_PROF_STAGE(prof_.get(), obs::Stage::kRouteUpdate);
  apply_delta(tables_.apply(RoutingMutation::add_adv(adv, from, flood_links()),
                            covering_policy()),
              cause, out);
}

void Broker::do_unadvertise(Hop from, const AdvertisementId& id, TxnId cause,
                            Outputs& out) {
  TMPS_PROF_STAGE(prof_.get(), obs::Stage::kRouteUpdate);
  apply_delta(tables_.apply(RoutingMutation::remove_adv(id, from),
                            covering_policy()),
              cause, out);
}

void Broker::do_publish(Hop from, const Publication& pub, TxnId cause,
                        Outputs& out, const obs::ProvenanceTag* in_tag) {
  // Root probe of the publish path: every stage below nests under it, so
  // its self time is exactly the unattributed ("other") publish-path cost.
  TMPS_PROF_STAGE(prof_.get(), obs::Stage::kPublish);
  if (pubs_processed_) pubs_processed_->inc();
  // Provenance: in-transit publications arrive tagged; origin publications
  // (from a local client or injected by the mobility layer) are stamped
  // here. Tags received from a peer are honoured even when this broker has
  // provenance disabled, so a mixed fleet still measures end to end.
  obs::ProvenanceTag origin_tag;
  const obs::ProvenanceTag* tag = in_tag;
  double now = 0.0;
  if (cfg_.obs.pub_provenance || tag != nullptr) {
    now = clock_ ? clock_() : 0.0;
    if (tag == nullptr) {
      origin_tag = obs::make_provenance(pub.id(), now, cfg_.obs.pub_trace_rate);
      tag = &origin_tag;
    }
  }
  // One matching pass answers everything: forwarding links, the matched
  // count (provenance, metrics and the load estimator share this single
  // definition — matching PRT entries, not a recount of distinct hops) and
  // the PRT version the match was computed against.
  const MatchResult mr = tables_.match(pub);
  if (tag != nullptr && tag->sampled) {
    TMPS_EVENT(tracer_, tag->trace, in_tag ? "pub:hop" : "pub:origin",
               {{"broker", std::to_string(id_)},
                {"pub", to_string(pub.id())},
                {"hop", std::to_string(tag->hops)},
                {"since_origin", fmt_secs(now - tag->origin_time)},
                {"hop_latency", fmt_secs(now - tag->last_hop_time)},
                {"matched", std::to_string(mr.matched)},
                {"prt_version", std::to_string(mr.version)},
                {"move_open",
                 control_ != nullptr && control_->movement_window_open()
                     ? "true"
                     : "false"}});
  }
  // Forwarded copies carry the tag advanced by one hop.
  std::optional<obs::ProvenanceTag> fwd;
  if (tag != nullptr) {
    fwd = *tag;
    if (fwd->hops < 255) ++fwd->hops;
    fwd->last_hop_time = now;
  }
  // Fan-out carries its own stage so hop-dispatch glue (branching, message
  // construction bookkeeping) is attributed rather than left in the
  // publish root's residual.
  TMPS_PROF_STAGE(prof_.get(), obs::Stage::kFanout);
  for (const Hop& hop : mr.links) {
    if (hop == from) continue;
    if (hop.is_broker()) {
      TMPS_PROF_STAGE(prof_.get(), obs::Stage::kEnqueue);
      Message m;
      m.id = next_message_id();
      m.cause = cause;
      m.prov = fwd;
      m.payload = PublishMsg{pub};
      out.emplace_back(hop.broker, std::move(m));
    } else if (hop.is_client()) {
      deliver_local(hop.client, pub, tag, now);
    }
  }
}

namespace {

template <typename Entry>
obs::EntrySnap snap_entry(const std::string& id, const std::string& filter,
                          const Entry& e) {
  obs::EntrySnap snap;
  snap.id = id;
  snap.filter = filter;
  snap.lasthop = e.lasthop.to_string();
  for (const Hop& h : e.forwarded_to) {
    snap.forwarded_to.push_back(h.to_string());
  }
  std::sort(snap.forwarded_to.begin(), snap.forwarded_to.end());
  if (e.shadow_lasthop.has_value()) {
    snap.has_shadow = true;
    snap.shadow_lasthop = e.shadow_lasthop->to_string();
    snap.shadow_txn = e.shadow_txn;
    snap.shadow_only = e.shadow_only;
  }
  return snap;
}

}  // namespace

void Broker::snapshot(obs::BrokerSnapshot& snap) const {
  snap.broker = id_;
  snap.sub_covering = cfg_.subscription_covering;
  snap.adv_covering = cfg_.advertisement_covering;
  for (const BrokerId n : overlay_->neighbors(id_)) {
    snap.neighbors.push_back(n);
  }
  for (const auto& [id, e] : tables_.prt()) {
    snap.prt.push_back(snap_entry(to_string(id), e.sub.filter.to_string(), e));
  }
  for (const auto& [id, e] : tables_.srt()) {
    snap.srt.push_back(snap_entry(to_string(id), e.adv.filter.to_string(), e));
  }
  // Deterministic order: the tables are unordered maps.
  auto by_id = [](const obs::EntrySnap& a, const obs::EntrySnap& b) {
    return a.id < b.id;
  };
  std::sort(snap.prt.begin(), snap.prt.end(), by_id);
  std::sort(snap.srt.begin(), snap.srt.end(), by_id);
  if (control_ != nullptr) control_->snapshot_into(snap);
}

std::string Broker::debug_string() const {
  return "B" + std::to_string(id_) + " " + tables_.debug_string();
}

}  // namespace tmps
