#include "broker/broker.h"

#include <algorithm>
#include <cassert>

namespace tmps {

Broker::Broker(BrokerId id, const Overlay* overlay, BrokerConfig cfg)
    : id_(id), overlay_(overlay), cfg_(std::move(cfg)) {
  assert(overlay_ && overlay_->contains(id_));
  tables_.set_use_cover_index(cfg_.covering_index);
}

void Broker::set_observability(obs::Tracer* tracer,
                               obs::MetricsRegistry* metrics) {
  tracer_ = tracer;
  if (!metrics) {
    msgs_processed_ = covering_retracts_ = covering_unquenches_ = nullptr;
    pubs_processed_ = deliveries_ = nullptr;
    return;
  }
  const obs::Labels labels = {{"broker", std::to_string(id_)}};
  msgs_processed_ = &metrics->counter("broker_messages_processed_total",
                                      labels);
  covering_retracts_ = &metrics->counter("broker_covering_retracts_total",
                                         labels);
  covering_unquenches_ = &metrics->counter("broker_covering_unquenches_total",
                                           labels);
  // Publication-load signals for the control plane (src/control): matching
  // passes plus local fan-out, the work that concentrates where clients do.
  pubs_processed_ = &metrics->counter("broker_publications_processed_total",
                                      labels);
  deliveries_ = &metrics->counter("broker_deliveries_total", labels);
}

MessageId Broker::next_message_id() {
  return (static_cast<MessageId>(id_) << 40) | ++msg_seq_;
}

void Broker::send(BrokerId to, Payload payload, TxnId cause, Outputs& out) {
  Message m;
  m.id = next_message_id();
  m.cause = cause;
  m.payload = std::move(payload);
  out.emplace_back(to, std::move(m));
}

// --- client entry points ----------------------------------------------------

Broker::Outputs Broker::client_subscribe(ClientId client,
                                         const Subscription& sub,
                                         TxnId cause) {
  Outputs out;
  do_subscribe(Hop::of_client(client), sub, cause, out);
  return out;
}

Broker::Outputs Broker::client_unsubscribe(ClientId client,
                                           const SubscriptionId& id,
                                           TxnId cause) {
  Outputs out;
  do_unsubscribe(Hop::of_client(client), id, cause, out);
  return out;
}

Broker::Outputs Broker::client_advertise(ClientId client,
                                         const Advertisement& adv,
                                         TxnId cause) {
  Outputs out;
  do_advertise(Hop::of_client(client), adv, cause, out);
  return out;
}

Broker::Outputs Broker::client_unadvertise(ClientId client,
                                           const AdvertisementId& id,
                                           TxnId cause) {
  Outputs out;
  do_unadvertise(Hop::of_client(client), id, cause, out);
  return out;
}

Broker::Outputs Broker::client_publish(ClientId client, const Publication& pub,
                                       TxnId cause) {
  Outputs out;
  do_publish(Hop::of_client(client), pub, cause, out);
  return out;
}

// --- injected operations (mobility layer) ------------------------------------

void Broker::inject_subscribe(Hop from, const Subscription& sub, TxnId cause,
                              std::vector<Output>& out) {
  do_subscribe(from, sub, cause, out);
}
void Broker::inject_unsubscribe(Hop from, const SubscriptionId& id,
                                TxnId cause, std::vector<Output>& out) {
  do_unsubscribe(from, id, cause, out);
}
void Broker::inject_advertise(Hop from, const Advertisement& adv, TxnId cause,
                              std::vector<Output>& out) {
  do_advertise(from, adv, cause, out);
}
void Broker::inject_unadvertise(Hop from, const AdvertisementId& id,
                                TxnId cause, std::vector<Output>& out) {
  do_unadvertise(from, id, cause, out);
}
void Broker::inject_publish(Hop from, const Publication& pub, TxnId cause,
                            std::vector<Output>& out) {
  do_publish(from, pub, cause, out);
}

// --- network input -----------------------------------------------------------

Broker::Outputs Broker::on_message(BrokerId from, const Message& msg) {
  Outputs out;
  if (msgs_processed_) msgs_processed_->inc();
  const Hop from_hop = Hop::of_broker(from);
  if (const auto* p = std::get_if<AdvertiseMsg>(&msg.payload)) {
    do_advertise(from_hop, p->adv, msg.cause, out);
  } else if (const auto* p = std::get_if<UnadvertiseMsg>(&msg.payload)) {
    do_unadvertise(from_hop, p->adv_id, msg.cause, out);
  } else if (const auto* p = std::get_if<SubscribeMsg>(&msg.payload)) {
    do_subscribe(from_hop, p->sub, msg.cause, out);
  } else if (const auto* p = std::get_if<UnsubscribeMsg>(&msg.payload)) {
    do_unsubscribe(from_hop, p->sub_id, msg.cause, out);
  } else if (const auto* p = std::get_if<PublishMsg>(&msg.payload)) {
    do_publish(from_hop, p->pub, msg.cause, out);
  } else if (control_) {
    control_->on_control(from, msg, out);
  } else if (msg.unicast_dest && *msg.unicast_dest != id_) {
    // No mobility layer attached: act as a plain relay for unicasts.
    forward_unicast(msg, out);
  }
  return out;
}

void Broker::send_unicast(BrokerId dest, Payload payload, TxnId cause,
                          std::vector<Output>& out) {
  Message m;
  m.id = next_message_id();
  m.cause = cause;
  m.unicast_dest = dest;
  m.payload = std::move(payload);
  if (dest == id_) {
    // Local delivery: hand straight to the control handler.
    assert(control_);
    control_->on_control(id_, m, out);
    return;
  }
  out.emplace_back(overlay_->next_hop(id_, dest), std::move(m));
}

void Broker::forward_unicast(const Message& msg, std::vector<Output>& out) {
  assert(msg.unicast_dest && *msg.unicast_dest != id_);
  out.emplace_back(overlay_->next_hop(id_, *msg.unicast_dest), msg);
}

void Broker::deliver_local(ClientId client, const Publication& pub) {
  if (deliveries_) deliveries_->inc();
  if (control_ && control_->intercept_notification(client, pub)) return;
  if (notify_) notify_(client, pub);
}

// --- routing handlers ----------------------------------------------------------

void Broker::apply_delta(const RoutingDelta& delta, TxnId cause, Outputs& out) {
  for (const RoutingOp& op : delta.ops) {
    switch (op.kind) {
      case RoutingOp::Kind::kForwardSub: {
        const SubEntry* e = tables_.find_sub(op.id);
        if (!e) break;  // ops reference live entries; defensive only
        send(op.link.broker, SubscribeMsg{e->sub}, cause, out);
        if (op.induced) {
          if (covering_unquenches_) covering_unquenches_->inc();
          if (cause != kNoTxn) {
            TMPS_EVENT(tracer_, cause, "covering:sub",
                       {{"broker", std::to_string(id_)},
                        {"link", std::to_string(op.link.broker)},
                        {"sub", to_string(op.id)}});
          }
        }
        break;
      }
      case RoutingOp::Kind::kRetractSub:
        send(op.link.broker, UnsubscribeMsg{op.id}, cause, out);
        if (op.induced) {
          if (covering_retracts_) covering_retracts_->inc();
          if (cause != kNoTxn) {
            TMPS_EVENT(tracer_, cause, "covering:unsub",
                       {{"broker", std::to_string(id_)},
                        {"link", std::to_string(op.link.broker)},
                        {"sub", to_string(op.id)}});
          }
        }
        break;
      case RoutingOp::Kind::kForwardAdv: {
        const AdvEntry* e = tables_.find_adv(op.id);
        if (!e) break;
        send(op.link.broker, AdvertiseMsg{e->adv}, cause, out);
        if (op.induced) {
          if (covering_unquenches_) covering_unquenches_->inc();
          if (cause != kNoTxn) {
            TMPS_EVENT(tracer_, cause, "covering:adv",
                       {{"broker", std::to_string(id_)},
                        {"link", std::to_string(op.link.broker)},
                        {"adv", to_string(op.id)}});
          }
        }
        break;
      }
      case RoutingOp::Kind::kRetractAdv:
        send(op.link.broker, UnadvertiseMsg{op.id}, cause, out);
        if (op.induced) {
          if (covering_retracts_) covering_retracts_->inc();
          if (cause != kNoTxn) {
            TMPS_EVENT(tracer_, cause, "covering:unadv",
                       {{"broker", std::to_string(id_)},
                        {"link", std::to_string(op.link.broker)},
                        {"adv", to_string(op.id)}});
          }
        }
        break;
    }
  }
}

void Broker::do_subscribe(Hop from, const Subscription& sub, TxnId cause,
                          Outputs& out) {
  apply_delta(tables_.add_sub(sub, from, covering_policy()), cause, out);
}

void Broker::do_unsubscribe(Hop from, const SubscriptionId& id, TxnId cause,
                            Outputs& out) {
  apply_delta(tables_.remove_sub(id, from, covering_policy()), cause, out);
}

void Broker::do_advertise(Hop from, const Advertisement& adv, TxnId cause,
                          Outputs& out) {
  std::vector<Hop> flood;
  for (const BrokerId n : overlay_->neighbors(id_)) {
    flood.push_back(Hop::of_broker(n));
  }
  apply_delta(tables_.add_adv(adv, from, flood, covering_policy()), cause, out);
}

void Broker::do_unadvertise(Hop from, const AdvertisementId& id, TxnId cause,
                            Outputs& out) {
  apply_delta(tables_.remove_adv(id, from, covering_policy()), cause, out);
}

void Broker::do_publish(Hop from, const Publication& pub, TxnId cause,
                        Outputs& out) {
  if (pubs_processed_) pubs_processed_->inc();
  for (const Hop& hop : tables_.hops_for_publication(pub)) {
    if (hop == from) continue;
    if (hop.is_broker()) {
      send(hop.broker, PublishMsg{pub}, cause, out);
    } else if (hop.is_client()) {
      deliver_local(hop.client, pub);
    }
  }
}

namespace {

template <typename Entry>
obs::EntrySnap snap_entry(const std::string& id, const std::string& filter,
                          const Entry& e) {
  obs::EntrySnap snap;
  snap.id = id;
  snap.filter = filter;
  snap.lasthop = e.lasthop.to_string();
  for (const Hop& h : e.forwarded_to) {
    snap.forwarded_to.push_back(h.to_string());
  }
  std::sort(snap.forwarded_to.begin(), snap.forwarded_to.end());
  if (e.shadow_lasthop.has_value()) {
    snap.has_shadow = true;
    snap.shadow_lasthop = e.shadow_lasthop->to_string();
    snap.shadow_txn = e.shadow_txn;
    snap.shadow_only = e.shadow_only;
  }
  return snap;
}

}  // namespace

void Broker::snapshot(obs::BrokerSnapshot& snap) const {
  snap.broker = id_;
  snap.sub_covering = cfg_.subscription_covering;
  snap.adv_covering = cfg_.advertisement_covering;
  for (const BrokerId n : overlay_->neighbors(id_)) {
    snap.neighbors.push_back(n);
  }
  for (const auto& [id, e] : tables_.prt()) {
    snap.prt.push_back(snap_entry(to_string(id), e.sub.filter.to_string(), e));
  }
  for (const auto& [id, e] : tables_.srt()) {
    snap.srt.push_back(snap_entry(to_string(id), e.adv.filter.to_string(), e));
  }
  // Deterministic order: the tables are unordered maps.
  auto by_id = [](const obs::EntrySnap& a, const obs::EntrySnap& b) {
    return a.id < b.id;
  };
  std::sort(snap.prt.begin(), snap.prt.end(), by_id);
  std::sort(snap.srt.begin(), snap.srt.end(), by_id);
  if (control_ != nullptr) control_->snapshot_into(snap);
}

std::string Broker::debug_string() const {
  return "B" + std::to_string(id_) + " " + tables_.debug_string();
}

}  // namespace tmps
