// A content-based pub/sub broker as a deterministic reactor.
//
// The broker owns the routing tables and implements advertisement-based
// content routing with optional covering. It is transport-agnostic: every
// entry point returns the list of (neighbour, message) pairs to transmit, so
// the same broker runs under the discrete-event simulator (benchmarks) and
// the thread transport (live integration tests) unchanged.
//
// Movement-protocol (control) messages are delegated to an injectable
// ControlHandler — the mobility engine from src/core — which uses the
// broker's tables/overlay through the accessors below. Clients live in the
// broker's mobile container (see the paper's system model, Sec. 4.1), so
// client↔broker interaction is local method calls, not network messages.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include <memory>

#include "broker/broker_config.h"
#include "common/ids.h"
#include "obs/flight_recorder.h"
#include "obs/introspect.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/provenance.h"
#include "obs/trace.h"
#include "pubsub/messages.h"
#include "routing/overlay.h"
#include "routing/routing_tables.h"

namespace tmps {

class Broker;

/// Hook for the mobility layer (src/core). The broker routes every control
/// payload here; the handler may call back into the broker to emit routing
/// operations or unicasts.
class ControlHandler {
 public:
  virtual ~ControlHandler() = default;

  /// A control message arrived from neighbouring broker `from`. The handler
  /// appends any messages to transmit to `out`.
  virtual void on_control(BrokerId from, const Message& msg,
                          std::vector<std::pair<BrokerId, Message>>& out) = 0;

  /// A publication is about to be delivered to local client `client`.
  /// Return true to consume it (e.g. buffer for a paused/moving client).
  virtual bool intercept_notification(ClientId client,
                                      const Publication& pub) = 0;

  /// Appends the mobility layer's view — hosted clients and in-flight
  /// movement transactions — to a routing snapshot (obs/introspect.h).
  /// Default: nothing to add.
  virtual void snapshot_into(obs::BrokerSnapshot& snap) const { (void)snap; }

  /// Does this broker currently participate in an in-flight movement
  /// transaction? Publication provenance records the answer per hop, so
  /// delivery-latency outliers can be attributed to movement windows.
  virtual bool movement_window_open() const { return false; }
};

class Broker {
 public:
  /// (neighbour broker, message to send to it)
  using Output = std::pair<BrokerId, Message>;
  using Outputs = std::vector<Output>;
  /// Final delivery of a publication to a local client.
  using NotifySink = std::function<void(ClientId, const Publication&)>;

  Broker(BrokerId id, const Overlay* overlay, BrokerConfig cfg = {});

  BrokerId id() const { return id_; }
  const Overlay& overlay() const { return *overlay_; }
  const BrokerConfig& config() const { return cfg_; }
  RoutingTables& tables() { return tables_; }
  const RoutingTables& tables() const { return tables_; }

  void set_control_handler(ControlHandler* handler) { control_ = handler; }
  void set_notify_sink(NotifySink sink) { notify_ = std::move(sink); }

  /// Attaches the host's observability (both optional). Registers this
  /// broker's per-broker counters and caches the handles; covering-induced
  /// (un)subscription events carry the triggering cause tag so they join a
  /// movement's trace.
  void set_observability(obs::Tracer* tracer, obs::MetricsRegistry* metrics);
  obs::Tracer* tracer() { return tracer_; }

  /// Installs the host clock (simulated or wall seconds). Publication
  /// provenance and the flight recorder timestamp through this; without it
  /// they record time 0.
  void set_clock(std::function<double()> clock) { clock_ = std::move(clock); }

  /// Observes every provenance-derived end-to-end delivery latency, in
  /// addition to the histograms. SimNetwork feeds Stats through this so the
  /// bench summaries and the histograms see identical samples.
  using DeliveryLatencySink = std::function<void(double)>;
  void set_delivery_latency_sink(DeliveryLatencySink sink) {
    latency_sink_ = std::move(sink);
  }

  /// The last-N event ring (null when cfg.obs.flight_capacity == 0).
  obs::FlightRecorder* flight() { return flight_.get(); }
  const obs::FlightRecorder* flight() const { return flight_.get(); }

  /// The publish-path stage profiler (null when cfg.obs.profile is off).
  /// Hosts flush it into the metrics registry and serve GET /profile.
  obs::StageProfiler* profiler() { return prof_.get(); }
  const obs::StageProfiler* profiler() const { return prof_.get(); }

  /// Runtime profiling toggles. enable_profiling constructs the profiler at
  /// the given 1-in-N root sampling rate (or re-enables an existing one —
  /// the rate of a live profiler is not changed); disable_profiling tears
  /// it down and probes revert to null checks. Not thread-safe against
  /// concurrent probing: only call while no other thread is in this broker
  /// (sim drivers, benches, setup code).
  void enable_profiling(std::uint32_t rate);
  void disable_profiling();

  /// Runtime override of the provenance sampling rate (1-in-N publications
  /// carry a traced tag; 0 stamps tags without sampling). Benches use this
  /// to compare sampling costs on one broker instance.
  void set_provenance_rate(std::uint32_t rate) {
    cfg_.obs.pub_trace_rate = rate;
  }

  /// Appends a flight-recorder dump to `trace_dir/flight_b<id>.jsonl` (no-op
  /// without a recorder or trace_dir). Called on movement abort and audit
  /// violation; `reason` labels the dump header.
  void dump_flight(std::string_view reason) const;

  // --- operations by locally attached clients -----------------------------

  Outputs client_subscribe(ClientId client, const Subscription& sub,
                           TxnId cause = kNoTxn);
  Outputs client_unsubscribe(ClientId client, const SubscriptionId& id,
                             TxnId cause = kNoTxn);
  Outputs client_advertise(ClientId client, const Advertisement& adv,
                           TxnId cause = kNoTxn);
  Outputs client_unadvertise(ClientId client, const AdvertisementId& id,
                             TxnId cause = kNoTxn);
  Outputs client_publish(ClientId client, const Publication& pub,
                         TxnId cause = kNoTxn);

  // --- network input -------------------------------------------------------

  /// Processes a message arriving from neighbouring broker `from`.
  Outputs on_message(BrokerId from, const Message& msg);

  // --- services for the mobility layer -------------------------------------

  /// Wraps a control payload for point-to-point delivery to `dest` and
  /// appends the first-hop transmission to `out`. If `dest` is this broker
  /// the payload is dispatched to the control handler directly.
  void send_unicast(BrokerId dest, Payload payload, TxnId cause,
                    std::vector<Output>& out);

  /// Emits `msg` towards its unicast destination (next hop on the path).
  void forward_unicast(const Message& msg, std::vector<Output>& out);

  /// Routing operations injected by the mobility layer on behalf of a hop
  /// (used by the traditional protocol to (un)issue subs/advs, and by tests).
  void inject_subscribe(Hop from, const Subscription& sub, TxnId cause,
                        std::vector<Output>& out);
  void inject_unsubscribe(Hop from, const SubscriptionId& id, TxnId cause,
                          std::vector<Output>& out);
  void inject_advertise(Hop from, const Advertisement& adv, TxnId cause,
                        std::vector<Output>& out);
  void inject_unadvertise(Hop from, const AdvertisementId& id, TxnId cause,
                          std::vector<Output>& out);
  void inject_publish(Hop from, const Publication& pub, TxnId cause,
                      std::vector<Output>& out);

  /// Applies a burst of routing mutations in one forwarding-index batch
  /// (RoutingTables::apply_batch) and transmits every resulting delta. Used
  /// by the mobility engine's hand-off paths, where a whole client profile
  /// is retracted or re-issued at once; kAddAdv mutations with empty
  /// flood_links are flooded over this broker's overlay neighbours.
  void inject_batch(std::vector<RoutingMutation> muts, TxnId cause,
                    std::vector<Output>& out);

  /// Delivers a publication to a local client, honouring the control
  /// handler's interception (buffering for moving clients).
  void deliver_local(ClientId client, const Publication& pub);

  MessageId next_message_id();

  /// Fills `snap` with this broker's live routing state: identity, overlay
  /// links, covering config, every SRT/PRT entry with its (shadow) hops, and
  /// — via the control handler — hosted clients and in-flight movement
  /// transactions. The host sets time/run/final_snapshot.
  void snapshot(obs::BrokerSnapshot& snap) const;

  std::string debug_string() const;

 private:
  void do_subscribe(Hop from, const Subscription& sub, TxnId cause,
                    Outputs& out);
  void do_unsubscribe(Hop from, const SubscriptionId& id, TxnId cause,
                      Outputs& out);
  void do_advertise(Hop from, const Advertisement& adv, TxnId cause,
                    Outputs& out);
  void do_unadvertise(Hop from, const AdvertisementId& id, TxnId cause,
                      Outputs& out);
  /// `in_tag` is the provenance carried by an in-transit PublishMsg; null
  /// for origin publications (a fresh tag is stamped when provenance is on).
  void do_publish(Hop from, const Publication& pub, TxnId cause, Outputs& out,
                  const obs::ProvenanceTag* in_tag = nullptr);
  /// Delivery with provenance: observes end-to-end latency when `tag` is
  /// present (`now` is the host-clock time already read by do_publish).
  void deliver_local(ClientId client, const Publication& pub,
                     const obs::ProvenanceTag* tag, double now);

  /// The covering policy the routing-table mutation API should apply,
  /// mirroring this broker's configuration.
  CoveringPolicy covering_policy() const {
    return {cfg_.subscription_covering, cfg_.advertisement_covering};
  }

  /// This broker's overlay neighbour links (advertisement flooding set).
  std::vector<Hop> flood_links() const;

  /// Turns a RoutingDelta's ordered ops into wire messages, counting
  /// covering-induced retracts/un-quenches and tagging them onto the
  /// movement trace of `cause`.
  void apply_delta(const RoutingDelta& delta, TxnId cause, Outputs& out);

  void send(BrokerId to, Payload payload, TxnId cause, Outputs& out);

  BrokerId id_;
  const Overlay* overlay_;
  BrokerConfig cfg_;
  RoutingTables tables_;
  ControlHandler* control_ = nullptr;
  NotifySink notify_;
  obs::Tracer* tracer_ = nullptr;
  obs::Counter* msgs_processed_ = nullptr;
  obs::Counter* covering_retracts_ = nullptr;
  obs::Counter* covering_unquenches_ = nullptr;
  obs::Counter* pubs_processed_ = nullptr;
  obs::Counter* deliveries_ = nullptr;
  /// End-to-end delivery latency histograms (global + per-broker), fed from
  /// provenance tags; null when metrics or provenance are off.
  obs::Histogram* delivery_latency_ = nullptr;
  obs::Histogram* delivery_latency_broker_ = nullptr;
  std::function<double()> clock_;
  DeliveryLatencySink latency_sink_;
  std::unique_ptr<obs::FlightRecorder> flight_;
  std::unique_ptr<obs::StageProfiler> prof_;
  std::uint64_t msg_seq_ = 0;
};

}  // namespace tmps
