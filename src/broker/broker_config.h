// The one per-broker options struct: routing optimizations, the HTTP admin
// plane and the observability toggles, consolidated from the previously
// scattered BrokerConfig / AdminConfig / TMPS_* env parsing. Hosts
// (sim/network, transports, Scenario) take a single BrokerConfig and thread
// the relevant sections down.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <string>

namespace tmps {

struct BrokerConfig {
  /// Enable the subscription-covering optimization (per-link quench/retract).
  bool subscription_covering = true;
  /// Enable the advertisement-covering optimization.
  bool advertisement_covering = true;
  /// Serve covering/intersection queries from the covering index
  /// (routing/covering_index.h); false falls back to the full-table scan
  /// oracles (reference semantics, for A/B measurement and debugging).
  bool covering_index = true;
  /// Serve publication matching (RoutingTables::match) from the counting
  /// forwarding index (routing/forwarding_index.h); false falls back to the
  /// full-PRT scan oracle.
  bool forwarding_index = true;

  /// Per-broker HTTP admin endpoints (/healthz, /metrics, /routing). Off by
  /// default; hosts opt in. Loopback only.
  struct Admin {
    bool enabled = false;
    /// Broker b listens on base_port + b; 0 = OS-assigned ephemeral ports
    /// (read them back via admin_port_of).
    std::uint16_t base_port = 0;
  };
  Admin admin;

  /// Mobility-driven load-balancing control plane (src/control). Like Admin
  /// this is a host-level section: the host builds one Balancer over its
  /// mobility engines when `enabled`. All times are in host seconds.
  struct Control {
    bool enabled = false;
    /// Load-sampling / planning period of the control loop.
    double sample_interval = 1.0;
    /// First tick fires this long after start() (lets joins settle).
    double start_delay = 0.0;
    /// EWMA smoothing factor for the load signals (1 = raw samples).
    double ewma_alpha = 0.3;
    /// Hysteresis band on the max/mean load ratio: balancing engages at or
    /// above `imbalance_high` and disengages at or below `imbalance_low`.
    double imbalance_high = 1.5;
    double imbalance_low = 1.15;
    /// A client that completed a movement may not be selected again for this
    /// long (anti-oscillation, with the hysteresis band).
    double client_cooldown = 30.0;
    /// Hard per-client migration budget per run; 0 = unlimited.
    std::size_t max_moves_per_client = 2;
    /// Concurrent movement transactions the balancer keeps in flight.
    std::size_t max_inflight = 4;
    /// Migration pairs selected per planning cycle.
    std::size_t max_moves_per_cycle = 4;
    /// Global pause after an aborted/rejected movement (3PC aborts and
    /// FailureInjector runs must not turn into a retry storm).
    double abort_backoff = 10.0;
    /// Target-selection penalty per overlay hop between source and target,
    /// in units of mean load (prefers short movement paths).
    double path_penalty = 0.05;
    /// Load-score weights: score = delivery_weight * delivery_rate
    /// + pub_weight * transit_rate + msg_weight * msg_rate
    /// + table_weight * (PRT+SRT size) + queue_weight * backlog_seconds.
    /// Deliveries dominate by default: local fan-out is the load client
    /// migration actually relocates, while publication transit through
    /// overlay hubs is topology-bound and discounted.
    double delivery_weight = 1.0;
    double pub_weight = 0.25;
    double msg_weight = 0.25;
    double table_weight = 0.0;
    double queue_weight = 50.0;
  };
  Control control;

  /// Anti-entropy repair loop (src/repair): each broker periodically sweeps
  /// its routing/transaction state for invariants the movement protocol says
  /// should hold, exchanges forwarding digests with its overlay neighbours,
  /// and emits corrective routing ops. Host-level section like Control: the
  /// host builds one RepairEngine per broker when `enabled`. Times are in
  /// host seconds.
  struct Repair {
    bool enabled = false;
    /// Period of the local invariant sweep (and digest exchange).
    double sweep_interval = 2.0;
    /// First sweep fires this long after start() (lets joins settle).
    double start_delay = 0.0;
    /// Shadow/parked transaction state younger than this is considered
    /// legitimately in flight and left alone. Must comfortably exceed the
    /// longest healthy movement hand-off.
    double stale_after = 5.0;
    /// Destructive repairs (orphan retraction) only fire after the suspicion
    /// persisted this many consecutive sweeps; additive repairs (re-issuing
    /// a missing forward) are idempotent and fire immediately.
    std::uint32_t confirm_rounds = 2;
    /// Send neighbour digests every Nth sweep; 0 disables digest exchange.
    std::uint32_t digest_every = 1;
    /// Reconcile quench state: re-issue subscriptions/advertisements that
    /// should be forwarded on a link but are not (covering-safe mobility).
    bool reconcile_quench = true;
  };
  Repair repair;

  /// Edge-client session layer (src/session): durable sessions with
  /// resumption tokens, disconnected-operation buffering and connectivity-
  /// triggered mobility. Host-level section like Repair: the host builds one
  /// SessionManager per broker when `enabled`. Times are in host seconds.
  struct Session {
    bool enabled = false;
    /// Expected client heartbeat cadence; a session missing
    /// `miss_factor` consecutive beats is treated as disconnected.
    /// 0 disables implicit disconnect detection.
    double heartbeat_interval = 5.0;
    double miss_factor = 3.0;
    /// Grace window after a disconnect before the session expires, fires its
    /// last-will and is garbage-collected.
    double grace = 30.0;
    /// Caps on the per-session disconnected-operation buffer. Zero means
    /// unlimited; bytes are encoded wire size, age is in host seconds.
    std::size_t buffer_max_count = 1024;
    std::size_t buffer_max_bytes = 256 * 1024;
    double buffer_max_age = 0.0;
    /// Resume at a broker other than the session's home initiates a movement
    /// transaction toward the new broker (connectivity-triggered mobility).
    bool move_on_resume = true;
    /// When the movement is refused, the home broker resumes the stub and
    /// forwards deliveries to the broker the client reattached to. Off means
    /// the resume is answered Resumed and deliveries wait at the home.
    bool forward_on_refusal = true;
    /// Cadence of the session timer sweep (liveness, grace, buffer age).
    double tick_interval = 1.0;
    /// First tick fires this long after start().
    double start_delay = 0.0;
  };
  Session session;

  /// Observability sinks and checks, settable programmatically or from the
  /// environment via from_env().
  struct Obs {
    /// Record movement spans/events (implied by a non-empty trace_dir).
    bool tracing = false;
    /// Run the embedded movement-invariant auditor over every scenario.
    bool audit = false;
    /// Directory for trace.jsonl / metrics.jsonl / snapshots.jsonl; empty =
    /// no file sinks.
    std::string trace_dir;
    /// Stamp publications with a ProvenanceTag at their origin broker and
    /// observe end-to-end delivery latency histograms. Cheap (one hash +
    /// clock read per publication), so on by default.
    bool pub_provenance = true;
    /// 1-in-N deterministic sampling of per-hop publication trace events
    /// (pub:origin / pub:hop / pub:deliver); 0 = never, 1 = every
    /// publication. Events additionally require the tracer to be enabled.
    std::uint32_t pub_trace_rate = 0;
    /// Per-broker flight-recorder ring size (last-N protocol+data events,
    /// recorded regardless of sampling); 0 disables the recorder.
    std::size_t flight_capacity = 256;
    /// Cadence of windowed time-series snapshots taken by the host (GET
    /// /timeseries, timeseries.jsonl); 0 disables ticking.
    double timeseries_interval = 0.0;
    /// Windows retained in the time-series ring.
    std::size_t timeseries_capacity = 120;
    /// Publish-path stage profiler (obs/profiler.h). Off by default: the
    /// broker only constructs a StageProfiler when set, so the disabled
    /// cost is a null check per probe site.
    bool profile = false;
    /// 1-in-N root-probe sampling rate for the profiler (rounded up to a
    /// power of two; 1 = time every publish). 16 keeps the measured
    /// publish-path overhead under the 3% gate.
    std::uint32_t profile_rate = 16;
  };
  Obs obs;

  /// Layers the TMPS_TRACE / TMPS_AUDIT / TMPS_PUB_TRACE_RATE /
  /// TMPS_PROFILE environment toggles on top of `base`: TMPS_TRACE="1" traces into the working
  /// directory, any other non-empty value is used as the output directory;
  /// TMPS_AUDIT enables the auditor; TMPS_PUB_TRACE_RATE=N samples 1-in-N
  /// publications for per-hop provenance events; TMPS_REPAIR enables the
  /// anti-entropy repair loop; TMPS_SESSION enables the edge-client session
  /// layer.
  static BrokerConfig from_env(BrokerConfig base);
  static BrokerConfig from_env() { return from_env(BrokerConfig{}); }
};

inline BrokerConfig BrokerConfig::from_env(BrokerConfig base) {
  const auto set = [](const char* name) {
    const char* v = std::getenv(name);
    return v && *v && std::string(v) != "0";
  };
  if (set("TMPS_AUDIT")) base.obs.audit = true;
  if (set("TMPS_BALANCE")) base.control.enabled = true;
  if (set("TMPS_REPAIR")) base.repair.enabled = true;
  if (set("TMPS_SESSION")) base.session.enabled = true;
  if (const char* trace = std::getenv("TMPS_TRACE");
      trace && *trace && std::string(trace) != "0") {
    base.obs.tracing = true;
    base.obs.trace_dir = std::string(trace) == "1" ? "." : trace;
  }
  if (const char* rate = std::getenv("TMPS_PUB_TRACE_RATE"); rate && *rate) {
    base.obs.pub_trace_rate =
        static_cast<std::uint32_t>(std::strtoul(rate, nullptr, 10));
  }
  // TMPS_PROFILE=1 enables the stage profiler at the default sampling rate;
  // any other number is used as the 1-in-N rate (TMPS_PROFILE=4 -> 1-in-4).
  if (const char* prof = std::getenv("TMPS_PROFILE");
      prof && *prof && std::string(prof) != "0") {
    base.obs.profile = true;
    if (const auto rate = std::strtoul(prof, nullptr, 10); rate > 1) {
      base.obs.profile_rate = static_cast<std::uint32_t>(rate);
    }
  }
  return base;
}

/// The control-plane options travel with BrokerConfig so hosts thread one
/// struct; src/control consumes this section.
using ControlConfig = BrokerConfig::Control;

/// The repair-loop options travel the same way; src/repair consumes this
/// section.
using RepairConfig = BrokerConfig::Repair;

/// The session-layer options travel the same way; src/session consumes this
/// section.
using SessionConfig = BrokerConfig::Session;

}  // namespace tmps
