// The one per-broker options struct: routing optimizations, the HTTP admin
// plane and the observability toggles, consolidated from the previously
// scattered BrokerConfig / AdminConfig / TMPS_* env parsing. Hosts
// (sim/network, transports, Scenario) take a single BrokerConfig and thread
// the relevant sections down.
#pragma once

#include <cstdint>
#include <cstdlib>
#include <string>

namespace tmps {

struct BrokerConfig {
  /// Enable the subscription-covering optimization (per-link quench/retract).
  bool subscription_covering = true;
  /// Enable the advertisement-covering optimization.
  bool advertisement_covering = true;
  /// Serve covering/intersection queries from the covering index
  /// (routing/covering_index.h); false falls back to the full-table scan
  /// oracles (reference semantics, for A/B measurement and debugging).
  bool covering_index = true;

  /// Per-broker HTTP admin endpoints (/healthz, /metrics, /routing). Off by
  /// default; hosts opt in. Loopback only.
  struct Admin {
    bool enabled = false;
    /// Broker b listens on base_port + b; 0 = OS-assigned ephemeral ports
    /// (read them back via admin_port_of).
    std::uint16_t base_port = 0;
  };
  Admin admin;

  /// Observability sinks and checks, settable programmatically or from the
  /// environment via from_env().
  struct Obs {
    /// Record movement spans/events (implied by a non-empty trace_dir).
    bool tracing = false;
    /// Run the embedded movement-invariant auditor over every scenario.
    bool audit = false;
    /// Directory for trace.jsonl / metrics.jsonl / snapshots.jsonl; empty =
    /// no file sinks.
    std::string trace_dir;
  };
  Obs obs;

  /// Layers the TMPS_TRACE / TMPS_AUDIT environment toggles on top of
  /// `base`: TMPS_TRACE="1" traces into the working directory, any other
  /// non-empty value is used as the output directory; TMPS_AUDIT enables the
  /// auditor.
  static BrokerConfig from_env(BrokerConfig base);
  static BrokerConfig from_env() { return from_env(BrokerConfig{}); }
};

inline BrokerConfig BrokerConfig::from_env(BrokerConfig base) {
  const auto set = [](const char* name) {
    const char* v = std::getenv(name);
    return v && *v && std::string(v) != "0";
  };
  if (set("TMPS_AUDIT")) base.obs.audit = true;
  if (const char* trace = std::getenv("TMPS_TRACE");
      trace && *trace && std::string(trace) != "0") {
    base.obs.tracing = true;
    base.obs.trace_dir = std::string(trace) == "1" ? "." : trace;
  }
  return base;
}

/// Deprecated alias kept for one PR: the admin plane options moved into
/// BrokerConfig::Admin.
using AdminConfig = BrokerConfig::Admin;

}  // namespace tmps
