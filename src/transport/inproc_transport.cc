#include "transport/inproc_transport.h"

#include <algorithm>
#include <cassert>

namespace tmps {

InprocTransport::InprocTransport(const Overlay& overlay,
                                 BrokerConfig broker_cfg,
                                 MobilityConfig mobility_cfg)
    : overlay_(&overlay) {
  tracer_.set_clock([this] { return now(); });
  dispatched_ = &metrics_.counter("inproc_messages_dispatched_total");
  nodes_.resize(overlay.broker_count() + 1);
  for (BrokerId b = 1; b <= overlay.broker_count(); ++b) {
    auto node = std::make_unique<Node>();
    node->broker = std::make_unique<Broker>(b, overlay_, broker_cfg);
    node->broker->set_observability(&tracer_, &metrics_);
    node->broker->set_clock([this] { return now(); });
    node->engine =
        std::make_unique<MobilityEngine>(*node->broker, *this, mobility_cfg);
    node->engine->set_transmit(
        [this, b](Broker::Outputs out) { dispatch(b, std::move(out)); });
    nodes_[b] = std::move(node);
  }
  epoch_ = std::chrono::steady_clock::now();
}

InprocTransport::~InprocTransport() { stop(); }

MobilityEngine& InprocTransport::engine(BrokerId b) {
  assert(b >= 1 && b < nodes_.size());
  return *nodes_[b]->engine;
}

void InprocTransport::start() {
  if (running_.exchange(true)) return;
  epoch_ = std::chrono::steady_clock::now();
  for (BrokerId b = 1; b < nodes_.size(); ++b) {
    nodes_[b]->worker = std::thread([this, b] { worker_loop(b); });
  }
  timer_thread_ = std::thread([this] { timer_loop(); });
}

void InprocTransport::stop() {
  if (!running_.exchange(false)) return;
  for (BrokerId b = 1; b < nodes_.size(); ++b) {
    nodes_[b]->queue_cv.notify_all();
  }
  timer_cv_.notify_all();
  for (BrokerId b = 1; b < nodes_.size(); ++b) {
    if (nodes_[b]->worker.joinable()) nodes_[b]->worker.join();
  }
  if (timer_thread_.joinable()) timer_thread_.join();
}

SimTime InprocTransport::now() const {
  const auto d = std::chrono::steady_clock::now() - epoch_;
  return std::chrono::duration<double>(d).count();
}

void InprocTransport::schedule(double delay, std::function<void()> fn) {
  std::lock_guard lock(timer_mu_);
  timers_.push_back(
      Timer{std::chrono::steady_clock::now() +
                std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(delay)),
            std::move(fn)});
  std::push_heap(timers_.begin(), timers_.end());
  timer_cv_.notify_all();
}

void InprocTransport::movement_finished(MovementRecord rec) {
  std::lock_guard lock(stats_mu_);
  stats_.record_movement(std::move(rec));
}

void InprocTransport::on_cause_drained(TxnId cause,
                                       std::function<void()> fn) {
  {
    std::lock_guard lock(cause_mu_);
    auto it = outstanding_.find(cause);
    if (it != outstanding_.end() && it->second > 0) {
      drain_watchers_[cause].push_back(std::move(fn));
      return;
    }
  }
  fn();
}

void InprocTransport::dispatch(BrokerId from, Broker::Outputs outputs) {
  for (auto& [to, msg] : outputs) {
    {
      std::lock_guard lock(stats_mu_);
      stats_.count_message(from, to, msg.type_name(), msg.cause);
    }
    if (msg.cause != kNoTxn) {
      std::lock_guard lock(cause_mu_);
      ++outstanding_[msg.cause];
    }
    in_flight_.fetch_add(1, std::memory_order_relaxed);
    dispatched_->inc();
    Node& node = *nodes_[to];
    {
      std::lock_guard lock(node.queue_mu);
      node.queue.push_back(Envelope{from, std::move(msg)});
    }
    node.queue_cv.notify_one();
  }
}

void InprocTransport::retire_cause(TxnId cause) {
  std::vector<std::function<void()>> fire;
  {
    std::lock_guard lock(cause_mu_);
    auto it = outstanding_.find(cause);
    if (it == outstanding_.end() || it->second == 0) return;
    if (--it->second == 0) {
      outstanding_.erase(it);
      auto w = drain_watchers_.find(cause);
      if (w != drain_watchers_.end()) {
        fire = std::move(w->second);
        drain_watchers_.erase(w);
      }
    }
  }
  for (auto& fn : fire) fn();
}

void InprocTransport::worker_loop(BrokerId b) {
  Node& node = *nodes_[b];
  while (true) {
    Envelope env{kNoBroker, {}};
    {
      std::unique_lock lock(node.queue_mu);
      node.queue_cv.wait(lock, [&] {
        return !node.queue.empty() || !running_.load();
      });
      if (node.queue.empty()) {
        if (!running_.load()) return;
        continue;
      }
      env = std::move(node.queue.front());
      node.queue.pop_front();
    }
    Broker::Outputs outputs;
    {
      std::lock_guard lock(node.state_mu);
      outputs = node.broker->on_message(env.from, env.msg);
    }
    dispatch(b, std::move(outputs));
    if (env.msg.cause != kNoTxn) retire_cause(env.msg.cause);
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void InprocTransport::timer_loop() {
  std::unique_lock lock(timer_mu_);
  while (running_.load()) {
    if (timers_.empty()) {
      timer_cv_.wait(lock);
      continue;
    }
    const auto next = timers_.front().at;
    if (timer_cv_.wait_until(lock, next) == std::cv_status::timeout &&
        !timers_.empty() && timers_.front().at <= next) {
      std::pop_heap(timers_.begin(), timers_.end());
      auto fn = std::move(timers_.back().fn);
      timers_.pop_back();
      lock.unlock();
      fn();
      lock.lock();
    }
  }
}

void InprocTransport::run_on(
    BrokerId b,
    const std::function<void(MobilityEngine&, Broker::Outputs&)>& op) {
  Node& node = *nodes_[b];
  Broker::Outputs out;
  {
    std::lock_guard lock(node.state_mu);
    op(*node.engine, out);
  }
  dispatch(b, std::move(out));
}

void InprocTransport::drain() {
  int idle_checks = 0;
  while (idle_checks < 5) {
    bool idle = in_flight_.load(std::memory_order_relaxed) == 0;
    if (idle) {
      ++idle_checks;
    } else {
      idle_checks = 0;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

}  // namespace tmps
