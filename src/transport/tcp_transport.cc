#include "transport/tcp_transport.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cassert>
#include <cstring>
#include <fstream>
#include <sstream>

#include "pubsub/codec.h"

namespace tmps {

namespace {

bool write_full(int fd, const void* data, std::size_t n) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    const ssize_t k = ::send(fd, p, n, MSG_NOSIGNAL);
    if (k < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += k;
    n -= static_cast<std::size_t>(k);
  }
  return true;
}

bool read_full(int fd, void* data, std::size_t n) {
  char* p = static_cast<char*>(data);
  while (n > 0) {
    const ssize_t k = ::recv(fd, p, n, 0);
    if (k <= 0) {
      if (k < 0 && errno == EINTR) continue;
      return false;  // EOF or error
    }
    p += k;
    n -= static_cast<std::size_t>(k);
  }
  return true;
}

constexpr std::uint32_t kMaxFrame = 16u << 20;  // 16 MiB sanity bound

}  // namespace

TcpTransport::TcpTransport(const Overlay& overlay, std::uint16_t base_port,
                           BrokerConfig broker_cfg, MobilityConfig mobility_cfg)
    : overlay_(&overlay),
      base_port_(base_port),
      admin_cfg_(broker_cfg.admin),
      obs_cfg_(broker_cfg.obs) {
  tracer_.set_clock([this] { return now(); });
  frames_sent_ = &metrics_.counter("tcp_frames_sent_total");
  bytes_sent_ = &metrics_.counter("tcp_bytes_sent_total");
  frames_received_ = &metrics_.counter("tcp_frames_received_total");
  decode_failures_metric_ = &metrics_.counter("tcp_decode_failures_total");
  send_failures_ = &metrics_.counter("tcp_send_failures_total");
  nodes_.resize(overlay.broker_count() + 1);
  for (BrokerId b = 1; b <= overlay.broker_count(); ++b) {
    auto node = std::make_unique<Node>();
    node->broker = std::make_unique<Broker>(b, overlay_, broker_cfg);
    node->broker->set_observability(&tracer_, &metrics_);
    node->broker->set_clock([this] { return now(); });
    node->broker->set_delivery_latency_sink([this](double s) {
      std::lock_guard lock(stats_mu_);
      stats_.record_delivery_latency(s);
    });
    node->engine =
        std::make_unique<MobilityEngine>(*node->broker, *this, mobility_cfg);
    node->engine->set_transmit([this, b](Broker::Outputs out) {
      dispatch_outputs(b, std::move(out));
    });
    nodes_[b] = std::move(node);
  }
  epoch_ = std::chrono::steady_clock::now();
}

TcpTransport::~TcpTransport() { stop(); }

MobilityEngine& TcpTransport::engine(BrokerId b) {
  assert(b >= 1 && b < nodes_.size());
  return *nodes_[b]->engine;
}

std::uint16_t TcpTransport::port_of(BrokerId b) const {
  return nodes_[b]->port;
}

std::uint16_t TcpTransport::admin_port_of(BrokerId b) const {
  const Node& node = *nodes_[b];
  return node.admin ? node.admin->port() : 0;
}

SimTime TcpTransport::now() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

bool TcpTransport::start() {
  if (running_.exchange(true)) return true;
  epoch_ = std::chrono::steady_clock::now();

  // Bind one listener per broker.
  for (BrokerId b = 1; b < nodes_.size(); ++b) {
    Node& node = *nodes_[b];
    node.listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (node.listen_fd < 0) return false;
    int one = 1;
    ::setsockopt(node.listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port =
        htons(base_port_ == 0 ? 0
                              : static_cast<std::uint16_t>(base_port_ + b));
    if (::bind(node.listen_fd, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      return false;
    }
    socklen_t len = sizeof(addr);
    ::getsockname(node.listen_fd, reinterpret_cast<sockaddr*>(&addr), &len);
    node.port = ntohs(addr.sin_port);
    if (::listen(node.listen_fd, 8) != 0) return false;
    node.accept_thread = std::thread([this, b] { accept_loop(b); });
  }

  if (!connect_links()) return false;
  if (admin_cfg_.enabled && !start_admin()) return false;

  // Wait until every node holds a link to each of its neighbours (the
  // accepting side registers asynchronously).
  for (int spin = 0; spin < 500; ++spin) {
    bool all = true;
    for (BrokerId b = 1; b < nodes_.size(); ++b) {
      std::lock_guard lock(nodes_[b]->peers_mu);
      if (nodes_[b]->peer_fd.size() != overlay_->neighbors(b).size()) {
        all = false;
      }
    }
    if (all) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }

  timer_thread_ = std::thread([this] { timer_loop(); });
  if (obs_cfg_.timeseries_interval > 0) {
    timeseries_.tick(now());  // baseline window
    schedule(obs_cfg_.timeseries_interval, [this] { timeseries_tick(); });
  }
  return true;
}

void TcpTransport::flush_profilers() {
  for (BrokerId b = 1; b < nodes_.size(); ++b) {
    if (obs::StageProfiler* prof = nodes_[b]->broker->profiler()) {
      prof->flush(&metrics_);
    }
  }
}

void TcpTransport::timeseries_tick() {
  if (!running_.load()) return;
  flush_profilers();  // stage histograms land in the same windows
  timeseries_.tick(now());
  schedule(obs_cfg_.timeseries_interval, [this] { timeseries_tick(); });
}

obs::BrokerSnapshot TcpTransport::snapshot_one(BrokerId b) {
  Node& node = *nodes_[b];
  obs::BrokerSnapshot snap;
  snap.time = now();
  std::lock_guard lock(node.state_mu);
  node.broker->snapshot(snap);
  return snap;
}

void TcpTransport::snapshot_routing(std::vector<obs::BrokerSnapshot>& out,
                                    bool final_snapshot) {
  for (BrokerId b = 1; b < nodes_.size(); ++b) {
    obs::BrokerSnapshot snap = snapshot_one(b);
    snap.final_snapshot = final_snapshot;
    out.push_back(std::move(snap));
  }
}

bool TcpTransport::start_admin() {
  for (BrokerId b = 1; b < nodes_.size(); ++b) {
    Node& node = *nodes_[b];
    node.admin = std::make_unique<HttpAdminServer>();
    node.admin->add_route("/healthz", [this, b, &node]() -> HttpResponse {
      const obs::BrokerSnapshot snap = snapshot_one(b);
      std::size_t peers = 0;
      {
        std::lock_guard lock(node.peers_mu);
        peers = node.peer_fd.size();
      }
      std::ostringstream os;
      os << "{\"status\":\"ok\",\"broker\":" << b << ",\"time\":" << now()
         << ",\"peers\":" << peers
         << ",\"hosted_clients\":" << snap.clients.size()
         << ",\"in_flight_txns\":" << snap.txns.size() << "}\n";
      return {200, "application/json", os.str()};
    });
    node.admin->add_route("/metrics", [this]() -> HttpResponse {
      flush_profilers();
      std::ostringstream os;
      metrics_.write_prometheus(os);
      return {200, "text/plain; version=0.0.4; charset=utf-8", os.str()};
    });
    node.admin->add_route("/profile", [this, &node]() -> HttpResponse {
      obs::StageProfiler* prof = node.broker->profiler();
      if (!prof) return {404, "text/plain", "profiler disabled\n"};
      prof->flush(&metrics_);
      std::ostringstream os;
      prof->write_ndjson(os);
      return {200, "application/x-ndjson", os.str()};
    });
    node.admin->add_route("/profile/collapsed",
                          [this, &node]() -> HttpResponse {
      obs::StageProfiler* prof = node.broker->profiler();
      if (!prof) return {404, "text/plain", "profiler disabled\n"};
      prof->flush(&metrics_);
      std::ostringstream os;
      prof->write_collapsed(os);
      return {200, "text/plain", os.str()};
    });
    node.admin->add_route("/routing", [this, b]() -> HttpResponse {
      return {200, "application/x-ndjson", snapshot_one(b).to_jsonl() + "\n"};
    });
    node.admin->add_route("/flight", [b, &node]() -> HttpResponse {
      const obs::FlightRecorder* fr = node.broker->flight();
      if (!fr) return {404, "text/plain", "flight recorder disabled\n"};
      std::ostringstream os;
      fr->write_jsonl(os, b, "http");
      return {200, "application/x-ndjson", os.str()};
    });
    node.admin->add_route("/timeseries", [this]() -> HttpResponse {
      std::ostringstream os;
      timeseries_.write_ndjson(os);
      return {200, "application/x-ndjson", os.str()};
    });
    for (const auto& [rb, path, handler] : extra_admin_routes_) {
      if (rb == b) node.admin->add_route(path, handler);
    }
    const std::uint16_t port =
        admin_cfg_.base_port == 0
            ? 0
            : static_cast<std::uint16_t>(admin_cfg_.base_port + b);
    if (!node.admin->start(port)) return false;
  }
  return true;
}

bool TcpTransport::connect_links() {
  // The lower-numbered endpoint dials.
  for (const auto& [a, b] : overlay_->edges()) {
    const BrokerId lo = std::min(a, b), hi = std::max(a, b);
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(nodes_[hi]->port);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd);
      return false;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    // Hello: tell the acceptor who we are.
    const std::uint32_t hello = lo;
    if (!write_full(fd, &hello, sizeof(hello))) return false;

    Node& node = *nodes_[lo];
    {
      std::lock_guard lock(node.peers_mu);
      node.peer_fd[hi] = fd;
      node.readers.emplace_back(
          [this, lo, hi, fd] { reader_loop(lo, hi, fd); });
    }
  }
  return true;
}

void TcpTransport::accept_loop(BrokerId b) {
  Node& node = *nodes_[b];
  while (running_.load()) {
    const int fd = ::accept(node.listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::uint32_t hello = 0;
    if (!read_full(fd, &hello, sizeof(hello))) {
      ::close(fd);
      continue;
    }
    if (hello == kClientHello) {
      // Edge client: the hello continues with its u64 client id.
      std::uint64_t client = 0;
      if (!read_full(fd, &client, sizeof(client)) || client == 0) {
        ::close(fd);
        continue;
      }
      std::lock_guard lock(node.clients_mu);
      if (auto it = node.client_fd.find(client); it != node.client_fd.end()) {
        // Reconnect before the old socket died: the new connection wins.
        ::shutdown(it->second, SHUT_RDWR);
      }
      node.client_fd[client] = fd;
      node.client_readers.emplace_back([this, b, client, fd] {
        client_reader_loop(b, ClientId{client}, fd);
      });
      continue;
    }
    if (hello == 0 || hello >= nodes_.size() ||
        !overlay_->are_neighbors(b, hello)) {
      ::close(fd);
      continue;
    }
    std::lock_guard lock(node.peers_mu);
    node.peer_fd[hello] = fd;
    node.readers.emplace_back(
        [this, b, peer = BrokerId{hello}, fd] { reader_loop(b, peer, fd); });
  }
}

void TcpTransport::client_reader_loop(BrokerId self, ClientId client, int fd) {
  while (running_.load()) {
    std::uint32_t len = 0;
    if (!read_full(fd, &len, sizeof(len))) break;
    if (len < 4 || len > kMaxFrame) break;
    std::string frame(len, '\0');
    if (!read_full(fd, frame.data(), len)) break;
    const std::optional<Message> msg =
        decode_message(std::string_view(frame).substr(4));
    if (!msg) {
      ++decode_failures_;
      decode_failures_metric_->inc();
      continue;
    }
    frames_received_->inc();
    if (session_frames_) {
      session_frames_(self, client, *msg);
    } else {
      // No session layer attached: feed it to the broker like a local frame.
      Node& node = *nodes_[self];
      Broker::Outputs outputs;
      {
        std::lock_guard lock(node.state_mu);
        outputs = node.broker->on_message(self, *msg);
      }
      dispatch_outputs(self, std::move(outputs));
    }
  }
  // Connection gone: deregister (unless a reconnect already replaced the fd)
  // and tell the session layer the client vanished.
  Node& node = *nodes_[self];
  bool was_current = false;
  {
    std::lock_guard lock(node.clients_mu);
    auto it = node.client_fd.find(client);
    if (it != node.client_fd.end() && it->second == fd) {
      node.client_fd.erase(it);
      was_current = true;
    }
  }
  ::close(fd);
  if (was_current && running_.load() && client_gone_) {
    client_gone_(self, client);
  }
}

bool TcpTransport::send_to_client(BrokerId b, ClientId client,
                                  const Message& msg) {
  const std::string body = encode_message(msg);
  const std::uint32_t len = static_cast<std::uint32_t>(body.size()) + 4;
  std::string frame;
  frame.reserve(4 + len);
  frame.append(reinterpret_cast<const char*>(&len), 4);
  const std::uint32_t from32 = b;
  frame.append(reinterpret_cast<const char*>(&from32), 4);
  frame.append(body);

  Node& node = *nodes_[b];
  std::lock_guard lock(node.clients_mu);
  auto it = node.client_fd.find(client);
  if (it == node.client_fd.end() ||
      !write_full(it->second, frame.data(), frame.size())) {
    send_failures_->inc();
    return false;
  }
  frames_sent_->inc();
  bytes_sent_->inc(frame.size());
  return true;
}

std::size_t TcpTransport::client_connections(BrokerId b) {
  Node& node = *nodes_[b];
  std::lock_guard lock(node.clients_mu);
  return node.client_fd.size();
}

void TcpTransport::add_admin_route(BrokerId b, std::string path,
                                   std::function<HttpResponse()> handler) {
  extra_admin_routes_.emplace_back(b, std::move(path), std::move(handler));
}

void TcpTransport::reader_loop(BrokerId self, BrokerId peer, int fd) {
  while (running_.load()) {
    std::uint32_t len = 0;
    if (!read_full(fd, &len, sizeof(len))) return;
    if (len < 4 || len > kMaxFrame) return;  // protocol violation: drop link
    std::string frame(len, '\0');
    if (!read_full(fd, frame.data(), len)) return;

    std::uint32_t from = 0;
    std::memcpy(&from, frame.data(), 4);
    std::optional<Message> msg;
    {
      TMPS_PROF_STAGE(nodes_[self]->broker->profiler(),
                      obs::Stage::kDecode);
      msg = decode_message(std::string_view(frame).substr(4));
    }
    if (from != peer || !msg) {
      ++decode_failures_;
      decode_failures_metric_->inc();
      in_flight_.fetch_sub(1, std::memory_order_relaxed);
      continue;
    }
    frames_received_->inc();
    process_frame(self, from, *msg);
  }
}

void TcpTransport::process_frame(BrokerId self, BrokerId from,
                                 const Message& msg) {
  Node& node = *nodes_[self];
  Broker::Outputs outputs;
  {
    std::lock_guard lock(node.state_mu);
    outputs = node.broker->on_message(from, msg);
  }
  dispatch_outputs(self, std::move(outputs));
  if (msg.cause != kNoTxn) retire_cause(msg.cause);
  in_flight_.fetch_sub(1, std::memory_order_relaxed);
}

void TcpTransport::send_frame(BrokerId from, BrokerId to, const Message& msg) {
  {
    std::lock_guard lock(stats_mu_);
    stats_.count_message(from, to, msg.type_name(), msg.cause);
  }
  if (msg.cause != kNoTxn) {
    std::lock_guard lock(cause_mu_);
    ++outstanding_[msg.cause];
  }
  in_flight_.fetch_add(1, std::memory_order_relaxed);

  obs::StageProfiler* prof = nodes_[from]->broker->profiler();
  std::string frame;
  {
    TMPS_PROF_STAGE(prof, obs::Stage::kEncode);
    const std::string body = encode_message(msg);
    const std::uint32_t len = static_cast<std::uint32_t>(body.size()) + 4;
    frame.reserve(4 + len);
    frame.append(reinterpret_cast<const char*>(&len), 4);
    const std::uint32_t from32 = from;
    frame.append(reinterpret_cast<const char*>(&from32), 4);
    frame.append(body);
  }

  TMPS_PROF_STAGE(prof, obs::Stage::kEnqueue);
  Node& node = *nodes_[from];
  std::lock_guard lock(node.peers_mu);
  auto it = node.peer_fd.find(to);
  if (it == node.peer_fd.end() ||
      !write_full(it->second, frame.data(), frame.size())) {
    // Link gone: the message is lost at this layer (the paper's fault model
    // masks this with persistent queues; see DurableNode).
    send_failures_->inc();
    if (msg.cause != kNoTxn) retire_cause(msg.cause);
    in_flight_.fetch_sub(1, std::memory_order_relaxed);
    return;
  }
  frames_sent_->inc();
  bytes_sent_->inc(frame.size());
}

void TcpTransport::dispatch_outputs(BrokerId from, Broker::Outputs outputs) {
  for (auto& [to, msg] : outputs) send_frame(from, to, msg);
}

void TcpTransport::run_on(
    BrokerId b,
    const std::function<void(MobilityEngine&, Broker::Outputs&)>& op) {
  Node& node = *nodes_[b];
  Broker::Outputs out;
  {
    std::lock_guard lock(node.state_mu);
    op(*node.engine, out);
  }
  dispatch_outputs(b, std::move(out));
}

void TcpTransport::drain() {
  int idle = 0;
  while (idle < 5) {
    if (in_flight_.load(std::memory_order_relaxed) == 0) {
      ++idle;
    } else {
      idle = 0;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

void TcpTransport::retire_cause(TxnId cause) {
  std::vector<std::function<void()>> fire;
  {
    std::lock_guard lock(cause_mu_);
    auto it = outstanding_.find(cause);
    if (it == outstanding_.end() || it->second == 0) return;
    if (--it->second == 0) {
      outstanding_.erase(it);
      auto w = drain_watchers_.find(cause);
      if (w != drain_watchers_.end()) {
        fire = std::move(w->second);
        drain_watchers_.erase(w);
      }
    }
  }
  for (auto& fn : fire) fn();
}

void TcpTransport::schedule(double delay, std::function<void()> fn) {
  std::lock_guard lock(timer_mu_);
  timers_.push_back(
      Timer{std::chrono::steady_clock::now() +
                std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(delay)),
            std::move(fn)});
  std::push_heap(timers_.begin(), timers_.end());
  timer_cv_.notify_all();
}

void TcpTransport::movement_finished(MovementRecord rec) {
  std::lock_guard lock(stats_mu_);
  stats_.record_movement(std::move(rec));
}

void TcpTransport::on_cause_drained(TxnId cause, std::function<void()> fn) {
  {
    std::lock_guard lock(cause_mu_);
    auto it = outstanding_.find(cause);
    if (it != outstanding_.end() && it->second > 0) {
      drain_watchers_[cause].push_back(std::move(fn));
      return;
    }
  }
  fn();
}

void TcpTransport::timer_loop() {
  std::unique_lock lock(timer_mu_);
  while (running_.load()) {
    if (timers_.empty()) {
      timer_cv_.wait_for(lock, std::chrono::milliseconds(50));
      continue;
    }
    const auto next = timers_.front().at;
    if (timer_cv_.wait_until(lock, next) == std::cv_status::timeout &&
        !timers_.empty() && timers_.front().at <= next) {
      std::pop_heap(timers_.begin(), timers_.end());
      auto fn = std::move(timers_.back().fn);
      timers_.pop_back();
      lock.unlock();
      fn();
      lock.lock();
    }
  }
}

void TcpTransport::dump_observability(const std::string& trace_path,
                                      const std::string& metrics_path,
                                      std::string_view run) {
  if (!trace_path.empty()) {
    std::ofstream os(trace_path, std::ios::app);
    if (os) tracer_.write_jsonl(os, run);
  }
  if (!metrics_path.empty()) {
    std::ofstream os(metrics_path, std::ios::app);
    if (os) metrics_.write_jsonl(os, run);
  }
}

void TcpTransport::stop() {
  if (!running_.exchange(false)) return;
  // Admin servers first: their handlers lock broker state.
  for (BrokerId b = 1; b < nodes_.size(); ++b) {
    if (nodes_[b]->admin) nodes_[b]->admin->stop();
  }
  timer_cv_.notify_all();
  for (BrokerId b = 1; b < nodes_.size(); ++b) {
    Node& node = *nodes_[b];
    if (node.listen_fd >= 0) {
      ::shutdown(node.listen_fd, SHUT_RDWR);
      ::close(node.listen_fd);
      node.listen_fd = -1;
    }
    {
      std::lock_guard lock(node.peers_mu);
      for (auto& [peer, fd] : node.peer_fd) {
        ::shutdown(fd, SHUT_RDWR);
      }
    }
    std::lock_guard lock(node.clients_mu);
    for (auto& [client, fd] : node.client_fd) {
      ::shutdown(fd, SHUT_RDWR);
    }
  }
  for (BrokerId b = 1; b < nodes_.size(); ++b) {
    Node& node = *nodes_[b];
    if (node.accept_thread.joinable()) node.accept_thread.join();
    for (auto& t : node.readers) {
      if (t.joinable()) t.join();
    }
    for (auto& t : node.client_readers) {
      if (t.joinable()) t.join();
    }
    std::lock_guard lock(node.peers_mu);
    for (auto& [peer, fd] : node.peer_fd) ::close(fd);
    node.peer_fd.clear();
    // Client fds are closed by their reader loops on exit.
    node.client_fd.clear();
  }
  if (timer_thread_.joinable()) timer_thread_.join();
}

}  // namespace tmps
