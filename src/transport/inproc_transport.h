// A live, multi-threaded host for the broker overlay: one worker thread per
// broker with bounded FIFO input queues, a timer thread, and wall-clock
// time. The same Broker/MobilityEngine objects that run under the
// discrete-event simulator run here unchanged — this is the "real system"
// backend used by the integration tests and the runnable examples.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/mobility_engine.h"
#include "sim/runtime_env.h"

namespace tmps {

class InprocTransport final : public RuntimeEnv {
 public:
  InprocTransport(const Overlay& overlay, BrokerConfig broker_cfg = {},
                  MobilityConfig mobility_cfg = {});
  ~InprocTransport() override;

  InprocTransport(const InprocTransport&) = delete;
  InprocTransport& operator=(const InprocTransport&) = delete;

  /// Spawns the broker workers and the timer thread.
  void start();
  /// Stops all threads; pending messages are processed first (drain).
  void stop();

  const Overlay& overlay() const { return *overlay_; }
  MobilityEngine& engine(BrokerId b);

  /// Runs a client operation on broker `b` under its lock and dispatches the
  /// resulting messages. Thread-safe; usable from any thread.
  void run_on(BrokerId b,
              const std::function<void(MobilityEngine&, Broker::Outputs&)>& op);

  /// Blocks until no message is queued or being processed anywhere (and the
  /// state has stayed idle for a grace period).
  void drain();

  Stats& stats() { return stats_; }

  // --- RuntimeEnv -----------------------------------------------------------
  SimTime now() const override;  // seconds since start()
  void schedule(double delay, std::function<void()> fn) override;
  void movement_finished(MovementRecord rec) override;
  void on_cause_drained(TxnId cause, std::function<void()> fn) override;
  obs::Tracer* tracer() override { return &tracer_; }
  obs::MetricsRegistry* metrics() override { return &metrics_; }

 private:
  struct Envelope {
    BrokerId from;
    Message msg;
  };
  struct Node {
    std::unique_ptr<Broker> broker;
    std::unique_ptr<MobilityEngine> engine;
    std::mutex state_mu;  // guards broker+engine state
    std::mutex queue_mu;
    std::condition_variable queue_cv;
    std::deque<Envelope> queue;
    std::thread worker;
  };

  void worker_loop(BrokerId b);
  void timer_loop();
  void dispatch(BrokerId from, Broker::Outputs outputs);
  void retire_cause(TxnId cause);

  const Overlay* overlay_;
  // Declared before nodes_: brokers/engines cache handles into these.
  obs::Tracer tracer_;
  obs::MetricsRegistry metrics_;
  obs::Counter* dispatched_ = nullptr;
  std::vector<std::unique_ptr<Node>> nodes_;  // index = BrokerId (1-based)
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> in_flight_{0};

  std::chrono::steady_clock::time_point epoch_;

  std::mutex stats_mu_;
  Stats stats_;

  std::mutex cause_mu_;
  std::map<TxnId, std::uint64_t> outstanding_;
  std::map<TxnId, std::vector<std::function<void()>>> drain_watchers_;

  std::mutex timer_mu_;
  std::condition_variable timer_cv_;
  struct Timer {
    std::chrono::steady_clock::time_point at;
    std::function<void()> fn;
    bool operator<(const Timer& o) const { return at > o.at; }
  };
  std::vector<Timer> timers_;  // heap
  std::thread timer_thread_;
};

}  // namespace tmps
