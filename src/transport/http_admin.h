// Minimal per-broker HTTP admin endpoint (loopback only).
//
// One tiny blocking HTTP/1.1 server per broker exposes the observability
// surfaces over real sockets:
//
//   GET /healthz   liveness + a one-object JSON summary (peers, hosted
//                  clients, in-flight movement transactions)
//   GET /metrics   the broker host's MetricsRegistry in Prometheus text
//                  exposition format
//   GET /routing   the broker's live routing snapshot (introspect.h) as
//                  JSONL — the same line format tools/tmps_audit consumes
//   GET /flight    the broker's flight-recorder ring (last-N protocol/data
//                  events) as NDJSON; 404 when the recorder is disabled
//   GET /timeseries the host's windowed metrics time-series as NDJSON (one
//                  object per window) — what tools/tmps_top renders
//
// The server is deliberately small: exact-path GET routing, one connection
// served at a time, Connection: close. It is an *admin* plane for probes and
// scrapes, not a data plane, and binds 127.0.0.1 only (the overlay is a
// trusted cluster fabric in the paper's model). Disabled by default; hosts
// opt in via BrokerConfig::Admin (broker/broker_config.h).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <thread>

namespace tmps {

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

class HttpAdminServer {
 public:
  /// Handlers run on the server's accept thread, one request at a time;
  /// they may take locks but must not block indefinitely.
  using Handler = std::function<HttpResponse()>;

  HttpAdminServer() = default;
  ~HttpAdminServer();

  HttpAdminServer(const HttpAdminServer&) = delete;
  HttpAdminServer& operator=(const HttpAdminServer&) = delete;

  /// Registers an exact-match route ("/healthz"). Call before start().
  void add_route(std::string path, Handler handler);

  /// Binds 127.0.0.1:port (0 = OS-assigned ephemeral port) and spawns the
  /// accept thread. Returns false on socket failure.
  bool start(std::uint16_t port = 0);
  void stop();

  /// The bound port (valid after start()).
  std::uint16_t port() const { return port_; }

  /// Requests served (test visibility).
  std::uint64_t requests_served() const {
    return requests_.load(std::memory_order_relaxed);
  }

 private:
  void serve_loop();
  void serve_one(int fd);

  std::map<std::string, Handler> routes_;
  // Atomic: stop() resets it while the serve thread is still reading.
  std::atomic<int> listen_fd_{-1};
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> requests_{0};
  std::thread thread_;
};

}  // namespace tmps
