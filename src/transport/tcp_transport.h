// A real-sockets host for the broker overlay: every broker listens on a
// loopback TCP port, overlay links are TCP connections, and messages travel
// as length-prefixed frames produced by the binary codec (pubsub/codec.h).
//
// This is the "networking boilerplate" backend: the same Broker and
// MobilityEngine objects the simulator benchmarks run here over an actual
// byte stream — serialization, framing, partial reads and connection
// management included. Loopback-only by design (the overlay is a trusted
// cluster fabric in the paper's model).
//
// Frame format on the wire:  [u32 length][u32 sender broker id][message
// bytes]  (little-endian), where `message bytes` is encode_message().
//
// Edge clients (session/tcp_session_client.h) dial the same listener and
// identify themselves with the kClientHello sentinel followed by their u64
// client id; their frames use sender id 0 and are routed to the session
// frame handler instead of the broker overlay input.
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "core/mobility_engine.h"
#include "obs/timeseries.h"
#include "sim/runtime_env.h"
#include "transport/http_admin.h"

namespace tmps {

class TcpTransport final : public RuntimeEnv {
 public:
  /// Hello sentinel an edge client sends instead of a broker id (broker ids
  /// are small; this can never collide).
  static constexpr std::uint32_t kClientHello = 0xFFFFFFFFu;
  /// Brokers listen on 127.0.0.1:base_port+broker_id. Pass base_port = 0 to
  /// let the OS pick ephemeral ports (recommended for tests). The admin
  /// plane is configured via broker_cfg.admin (BrokerConfig consolidates
  /// what used to be a separate AdminConfig parameter).
  TcpTransport(const Overlay& overlay, std::uint16_t base_port = 0,
               BrokerConfig broker_cfg = {}, MobilityConfig mobility_cfg = {});
  ~TcpTransport() override;

  TcpTransport(const TcpTransport&) = delete;
  TcpTransport& operator=(const TcpTransport&) = delete;

  /// Binds listeners, establishes the overlay's TCP links, spawns reader
  /// threads. Returns false on any socket failure.
  bool start();
  void stop();

  const Overlay& overlay() const { return *overlay_; }
  MobilityEngine& engine(BrokerId b);
  std::uint16_t port_of(BrokerId b) const;
  /// Admin endpoint port of broker b (0 when the admin plane is disabled or
  /// not yet started).
  std::uint16_t admin_port_of(BrokerId b) const;

  /// Runs a client operation on broker `b` under its lock and transmits the
  /// resulting messages over the sockets.
  void run_on(BrokerId b,
              const std::function<void(MobilityEngine&, Broker::Outputs&)>& op);

  /// Blocks until no frame is in flight and brokers have been idle briefly.
  void drain();

  Stats& stats() { return stats_; }
  /// Frames that arrived but failed to decode (corruption canary).
  std::uint64_t decode_failures() const { return decode_failures_.load(); }

  // --- edge-client connections ----------------------------------------------

  /// Frames arriving over an edge-client connection at broker `b` are handed
  /// here (off the client reader thread). Without a handler they are fed to
  /// the broker like an overlay frame from itself.
  using SessionFrameHandler =
      std::function<void(BrokerId, ClientId, const Message&)>;
  void set_session_frame_handler(SessionFrameHandler fn) {
    session_frames_ = std::move(fn);
  }
  /// Fires when an edge-client connection drops (EOF/error on its socket).
  using ClientGoneHandler = std::function<void(BrokerId, ClientId)>;
  void set_client_gone_handler(ClientGoneHandler fn) {
    client_gone_ = std::move(fn);
  }
  /// Sends a message down the edge-client connection `client` holds to
  /// broker `b`; false when no such connection is live.
  bool send_to_client(BrokerId b, ClientId client, const Message& msg);
  /// Live edge-client connections at broker `b`.
  std::size_t client_connections(BrokerId b);

  /// Registers an extra admin route served by broker `b`'s admin endpoint
  /// (e.g. GET /sessions). Call before start().
  void add_admin_route(BrokerId b, std::string path,
                       std::function<HttpResponse()> handler);

  /// Windowed time-series over the shared metrics registry. Ticked on the
  /// timer thread every broker_cfg.obs.timeseries_interval seconds (when
  /// positive) and served as NDJSON at GET /timeseries.
  obs::TimeSeriesRing& timeseries() { return timeseries_; }

  /// Flushes buffered trace records and a metrics snapshot to JSONL files
  /// (appending). Either path may be empty to skip that sink.
  void dump_observability(const std::string& trace_path,
                          const std::string& metrics_path,
                          std::string_view run = {});

  // --- RuntimeEnv -----------------------------------------------------------
  SimTime now() const override;
  void schedule(double delay, std::function<void()> fn) override;
  void movement_finished(MovementRecord rec) override;
  void on_cause_drained(TxnId cause, std::function<void()> fn) override;
  obs::Tracer* tracer() override { return &tracer_; }
  obs::MetricsRegistry* metrics() override { return &metrics_; }
  void snapshot_routing(std::vector<obs::BrokerSnapshot>& out,
                        bool final_snapshot = false) override;

 private:
  struct Node {
    std::unique_ptr<Broker> broker;
    std::unique_ptr<MobilityEngine> engine;
    std::mutex state_mu;
    // Atomic: stop() resets it while the accept thread is still reading.
    std::atomic<int> listen_fd{-1};
    std::uint16_t port = 0;
    std::thread accept_thread;
    // Established links to neighbours: fd per peer, guarded for writes.
    std::mutex peers_mu;
    std::map<BrokerId, int> peer_fd;
    std::vector<std::thread> readers;
    // Edge-client connections (kClientHello): fd per client id.
    std::mutex clients_mu;
    std::map<ClientId, int> client_fd;
    std::vector<std::thread> client_readers;
    std::unique_ptr<HttpAdminServer> admin;
  };

  obs::BrokerSnapshot snapshot_one(BrokerId b);
  bool start_admin();
  void timeseries_tick();
  /// Drains every broker's stage-profiler slabs into the metrics registry
  /// (no-op when profiling is off). Called before any metrics export.
  void flush_profilers();

  bool connect_links();
  void accept_loop(BrokerId b);
  void reader_loop(BrokerId self, BrokerId peer, int fd);
  void client_reader_loop(BrokerId self, ClientId client, int fd);
  void send_frame(BrokerId from, BrokerId to, const Message& msg);
  void dispatch_outputs(BrokerId from, Broker::Outputs outputs);
  void process_frame(BrokerId self, BrokerId from, const Message& msg);
  void retire_cause(TxnId cause);
  void timer_loop();

  const Overlay* overlay_;
  std::uint16_t base_port_;
  BrokerConfig::Admin admin_cfg_;
  BrokerConfig::Obs obs_cfg_;
  // Declared before nodes_: brokers/engines cache handles into these.
  obs::Tracer tracer_;
  obs::MetricsRegistry metrics_;
  obs::TimeSeriesRing timeseries_{&metrics_};
  obs::Counter* frames_sent_ = nullptr;
  obs::Counter* bytes_sent_ = nullptr;
  obs::Counter* frames_received_ = nullptr;
  obs::Counter* decode_failures_metric_ = nullptr;
  obs::Counter* send_failures_ = nullptr;
  std::vector<std::unique_ptr<Node>> nodes_;
  SessionFrameHandler session_frames_;
  ClientGoneHandler client_gone_;
  std::vector<std::tuple<BrokerId, std::string, std::function<HttpResponse()>>>
      extra_admin_routes_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> in_flight_{0};
  std::atomic<std::uint64_t> decode_failures_{0};
  std::chrono::steady_clock::time_point epoch_;

  std::mutex stats_mu_;
  Stats stats_;

  std::mutex cause_mu_;
  std::map<TxnId, std::uint64_t> outstanding_;
  std::map<TxnId, std::vector<std::function<void()>>> drain_watchers_;

  std::mutex timer_mu_;
  std::condition_variable timer_cv_;
  struct Timer {
    std::chrono::steady_clock::time_point at;
    std::function<void()> fn;
    bool operator<(const Timer& o) const { return at > o.at; }
  };
  std::vector<Timer> timers_;
  std::thread timer_thread_;
};

}  // namespace tmps
