#include "transport/http_admin.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace tmps {

namespace {

const char* reason_phrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    default: return "Internal Server Error";
  }
}

bool write_full(int fd, const void* data, std::size_t n) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    const ssize_t k = ::send(fd, p, n, MSG_NOSIGNAL);
    if (k < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += k;
    n -= static_cast<std::size_t>(k);
  }
  return true;
}

}  // namespace

HttpAdminServer::~HttpAdminServer() { stop(); }

void HttpAdminServer::add_route(std::string path, Handler handler) {
  routes_[std::move(path)] = std::move(handler);
}

bool HttpAdminServer::start(std::uint16_t port) {
  if (running_.exchange(true)) return true;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    running_.store(false);
    return false;
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listen_fd_, 8) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    running_.store(false);
    return false;
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  thread_ = std::thread([this] { serve_loop(); });
  return true;
}

void HttpAdminServer::stop() {
  if (!running_.exchange(false)) return;
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (thread_.joinable()) thread_.join();
}

void HttpAdminServer::serve_loop() {
  while (running_.load()) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed
    }
    serve_one(fd);
    ::close(fd);
  }
}

void HttpAdminServer::serve_one(int fd) {
  // A stalled client must not wedge the admin plane.
  timeval tv{/*tv_sec=*/2, /*tv_usec=*/0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));

  // Read until the end of the request head (no request bodies on GET).
  std::string req;
  char buf[1024];
  while (req.find("\r\n\r\n") == std::string::npos && req.size() < 16384) {
    const ssize_t k = ::recv(fd, buf, sizeof(buf), 0);
    if (k <= 0) {
      if (k < 0 && errno == EINTR) continue;
      if (req.find("\r\n") == std::string::npos) return;  // no request line
      break;
    }
    req.append(buf, static_cast<std::size_t>(k));
  }

  HttpResponse resp;
  const auto line_end = req.find("\r\n");
  const std::string line = req.substr(0, line_end);
  const auto sp1 = line.find(' ');
  const auto sp2 = line.find(' ', sp1 == std::string::npos ? 0 : sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    resp = HttpResponse{400, "text/plain; charset=utf-8", "bad request\n"};
  } else if (line.substr(0, sp1) != "GET") {
    resp = HttpResponse{405, "text/plain; charset=utf-8",
                        "only GET is supported\n"};
  } else {
    std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
    const auto query = path.find('?');
    if (query != std::string::npos) path.resize(query);
    auto it = routes_.find(path);
    if (it == routes_.end()) {
      resp = HttpResponse{404, "text/plain; charset=utf-8", "not found\n"};
    } else {
      resp = it->second();
    }
  }

  std::string head = "HTTP/1.1 " + std::to_string(resp.status) + " " +
                     reason_phrase(resp.status) +
                     "\r\nContent-Type: " + resp.content_type +
                     "\r\nContent-Length: " + std::to_string(resp.body.size()) +
                     "\r\nConnection: close\r\n\r\n";
  if (write_full(fd, head.data(), head.size())) {
    write_full(fd, resp.body.data(), resp.body.size());
  }
  requests_.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace tmps
