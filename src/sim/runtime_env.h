// Runtime services the mobility protocols need from their host — a clock,
// timers, movement metrics, and causal-drain notification. Implemented by
// the discrete-event SimNetwork (benchmarks) and the thread transport
// (live runs), keeping the protocol code host-agnostic.
#pragma once

#include <functional>
#include <vector>

#include "common/ids.h"
#include "obs/introspect.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/stats.h"

namespace tmps {

class RuntimeEnv {
 public:
  virtual ~RuntimeEnv() = default;

  virtual SimTime now() const = 0;

  /// Runs `fn` after `delay` seconds (protocol timeouts, retries).
  virtual void schedule(double delay, std::function<void()> fn) = 0;

  /// Reports a finished (committed or aborted) movement transaction.
  virtual void movement_finished(MovementRecord rec) = 0;

  /// Invokes `fn` once no message tagged with `cause` remains in flight.
  /// Used by the traditional protocol to detect that a movement's induced
  /// (un)subscription propagation — including covering cascades — has
  /// quiesced. Fires immediately if the cause is already drained.
  virtual void on_cause_drained(TxnId cause, std::function<void()> fn) = 0;

  /// Movement-transaction tracer of this host; nullptr when the host does
  /// not provide one. Guarded by the TMPS_* trace macros at every use site.
  virtual obs::Tracer* tracer() { return nullptr; }

  /// Metrics registry of this host; nullptr when the host does not provide
  /// one. Instrumented components cache the metric handles they register.
  virtual obs::MetricsRegistry* metrics() { return nullptr; }

  /// Appends one routing snapshot per hosted broker (obs/introspect.h).
  /// `final_snapshot` marks an end-of-run capture, which arms the auditor's
  /// orphan/quiescence checks. Default: the host has no snapshot support.
  virtual void snapshot_routing(std::vector<obs::BrokerSnapshot>& out,
                                bool final_snapshot = false) {
    (void)out;
    (void)final_snapshot;
  }
};

}  // namespace tmps
