// The simulated broker network: an open queueing model over the overlay.
//
// Every link is a pair of directed FIFO channels with a serialization time
// (per-message occupancy) and a propagation delay; every broker is a single
// server with a per-message processing time. Message bursts therefore queue
// and produce the congestion dynamics behind the paper's latency results —
// this substitutes for the paper's 1.86 GHz cluster (LAN profile) and
// PlanetLab (WAN profile) testbeds.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <random>
#include <vector>

#include "broker/broker.h"
#include "obs/timeseries.h"
#include "sim/event_queue.h"
#include "sim/runtime_env.h"
#include "sim/stats.h"

namespace tmps {

struct NetworkProfile {
  /// One-way propagation delay per link (seconds).
  double link_delay = 0.002;
  /// Per-message serialization/occupancy time on a link.
  double link_service = 0.0001;
  /// Broker processing time per *publication* (matching pass; counting
  /// algorithms keep this fast).
  double pub_proc = 0.002;
  /// Broker processing time per *(un)subscription / (un)advertisement*:
  /// routing these requires covering checks — pairwise filter-containment
  /// tests against the tables — the expensive operation in PADRES-era
  /// brokers and the cost the paper's covering pathology multiplies.
  double sub_proc = 0.008;
  /// Processing time for movement-protocol (control) messages: relayed or
  /// touching only the moving client's own entries.
  double control_proc = 0.001;
  /// Optional additional cost per routing-table entry applied to routing
  /// messages (0 = flat costs). Exposed for the processing-cost ablation.
  double proc_per_entry = 0.0;
  /// Mean of exponential per-message extra delay (0 = deterministic).
  double delay_jitter = 0.0;
  /// Heterogeneous per-link base delays (log-normal around link_delay), as
  /// on PlanetLab.
  bool heterogeneous_links = false;
  /// Probability that a link delivers a message twice (at-least-once
  /// delivery, e.g. retransmission after a lost ack). The protocols must be
  /// idempotent against this; robustness tests turn it on.
  double duplicate_prob = 0.0;
  std::uint64_t seed = 42;

  /// Cluster testbed: ~1 ms links, fast brokers, no jitter.
  static NetworkProfile lan();
  /// PlanetLab-like WAN: tens-of-ms heterogeneous links, slower brokers,
  /// heavy jitter.
  static NetworkProfile planetlab();
};

/// What a fault hook does to one message about to enter a link. Default:
/// deliver normally.
struct FaultAction {
  /// The message never arrives (a genuine loss — unlike pause_*, which only
  /// delays). Its cause tag is NOT incremented, so causal drains still
  /// terminate; the protocol above must cope or time out.
  bool drop = false;
  /// A second copy arrives after `duplicate_delay` extra seconds, bypassing
  /// the link's FIFO clamp (a late retransmission, possibly reordered).
  bool duplicate = false;
  double duplicate_delay = 0;
  /// Extra latency on the message itself; a delayed message also bypasses
  /// the FIFO clamp, so later traffic may overtake it.
  double extra_delay = 0;
};

class SimNetwork final : public RuntimeEnv {
 public:
  SimNetwork(const Overlay& overlay, BrokerConfig broker_cfg = {},
             NetworkProfile profile = NetworkProfile::lan());
  ~SimNetwork() override;

  SimNetwork(const SimNetwork&) = delete;
  SimNetwork& operator=(const SimNetwork&) = delete;

  const Overlay& overlay() const { return *overlay_; }
  Broker& broker(BrokerId id);
  EventQueue& events() { return events_; }
  Stats& stats() { return stats_; }
  std::mt19937_64& rng() { return rng_; }

  /// Windowed time-series over this run's metrics registry. The scenario
  /// driver schedules the ticks (cfg.obs.timeseries_interval) and writes the
  /// NDJSON sink after the run.
  obs::TimeSeriesRing& timeseries() { return timeseries_; }

  // --- RuntimeEnv ---
  SimTime now() const override { return events_.now(); }
  void schedule(double delay, std::function<void()> fn) override;
  void movement_finished(MovementRecord rec) override;
  void on_cause_drained(TxnId cause, std::function<void()> fn) override;
  obs::Tracer* tracer() override { return &tracer_; }
  obs::MetricsRegistry* metrics() override { return &metrics_; }

  /// Hands a broker's outputs to the network at the current time.
  void transmit(BrokerId from, Broker::Outputs outputs);

  /// Runs `op` against broker `b` now and transmits its outputs. Use for
  /// client operations driven by the scenario script.
  void run_local(BrokerId b,
                 const std::function<Broker::Outputs(Broker&)>& op);

  // --- failure injection (faults are masked per Sec. 3.5: messages are
  // delayed, never lost) ---
  void pause_broker(BrokerId b, double duration);
  void pause_link(BrokerId a, BrokerId b, double duration);

  /// Unmasked message faults (drop/duplicate/delay): consulted for every
  /// message entering a link. Used by FailureInjector to violate the
  /// paper's fault model on purpose so the auditor has something to catch.
  using FaultHook =
      std::function<FaultAction(BrokerId from, BrokerId to, const Message&)>;
  void set_fault_hook(FaultHook hook) { fault_hook_ = std::move(hook); }

  void run() { events_.run(); }
  void run_until(SimTime t) { events_.run_until(t); }

  /// Messages still in flight for a cause tag (test visibility).
  std::uint64_t outstanding(TxnId cause) const;

  /// All causes with messages still in flight (entries are erased when a
  /// cause drains, so leftovers are genuinely outstanding). The auditor's
  /// quiescence check reads this after the run.
  const std::map<TxnId, std::uint64_t>& outstanding_causes() const {
    return outstanding_;
  }

  void snapshot_routing(std::vector<obs::BrokerSnapshot>& out,
                        bool final_snapshot = false) override;

  /// Cumulative processing (busy) time of a broker — utilization evidence
  /// for the congestion analysis (busy / now = utilization).
  double broker_busy_seconds(BrokerId b) const;

  /// Seconds of processing backlog queued at a broker right now (0 when
  /// idle) — the queue-depth signal the load estimator samples.
  double broker_backlog_seconds(BrokerId b) const;

 private:
  struct LinkState {
    double base_delay = 0;
    double next_free = 0;
    double last_arrival = 0;
    double paused_until = 0;
  };
  struct BrokerState {
    std::unique_ptr<Broker> broker;
    double next_free = 0;
    double paused_until = 0;
    double busy_seconds = 0;
  };

  LinkState& link(BrokerId from, BrokerId to);
  void send_one(BrokerId from, BrokerId to, Message msg);
  void arrive(BrokerId from, BrokerId to, Message msg);
  void process(BrokerId from, BrokerId to, Message msg);
  double jitter();

  const Overlay* overlay_;
  NetworkProfile profile_;
  EventQueue events_;
  Stats stats_;
  // Observability lives above brokers_ so instrumented brokers never
  // outlive the registry/tracer they cache handles into.
  obs::Tracer tracer_;
  obs::MetricsRegistry metrics_;
  obs::TimeSeriesRing timeseries_{&metrics_};
  obs::Counter* msgs_sent_ = nullptr;
  obs::Counter* msgs_dropped_ = nullptr;
  obs::Histogram* link_wait_ = nullptr;
  obs::Histogram* broker_wait_ = nullptr;
  FaultHook fault_hook_;
  std::mt19937_64 rng_;
  std::vector<BrokerState> brokers_;  // index by BrokerId (1-based)
  std::map<std::pair<BrokerId, BrokerId>, LinkState> links_;
  std::map<TxnId, std::uint64_t> outstanding_;
  std::map<TxnId, std::vector<std::function<void()>>> drain_watchers_;
};

}  // namespace tmps
