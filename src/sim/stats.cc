#include "sim/stats.h"

#include <algorithm>
#include <cmath>

namespace tmps {

void Summary::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++n_;
  sum_ += x;
  sumsq_ += x * x;
  ++buckets_[obs::bucket_index(x)];
}

double Summary::variance() const {
  if (n_ < 2) return 0.0;
  const double m = mean();
  const double v = sumsq_ / static_cast<double>(n_) - m * m;
  return v > 0 ? v : 0.0;
}

double Summary::stddev() const { return std::sqrt(variance()); }

double Summary::percentile(double q) const {
  if (n_ == 0) return 0.0;
  const double est = obs::percentile_from_counts(buckets_.data(), n_, q);
  // Bucket interpolation cannot be tighter than the data itself.
  return std::min(std::max(est, min_), max_);
}

void Stats::count_message(BrokerId from, BrokerId to, std::string_view type,
                          TxnId cause) {
  ++total_messages_;
  ++link_counts_[{from, to}];
  ++type_counts_[std::string(type)];
  if (cause != kNoTxn) {
    ++cause_counts_[cause];
    // Keep the movement record's attribution live: covering cascades (and
    // the tail of the hop-by-hop path) can still emit messages for this
    // transaction after the coordinator captured the record.
    auto it = movement_index_.find(cause);
    if (it != movement_index_.end()) ++movements_[it->second].messages;
  }
}

std::uint64_t Stats::messages_by_type(const std::string& type) const {
  auto it = type_counts_.find(type);
  return it == type_counts_.end() ? 0 : it->second;
}

std::uint64_t Stats::messages_for_cause(TxnId cause) const {
  auto it = cause_counts_.find(cause);
  return it == cause_counts_.end() ? 0 : it->second;
}

void Stats::reset_traffic() {
  total_messages_ = 0;
  link_counts_.clear();
  type_counts_.clear();
  cause_counts_.clear();
  deliveries_ = 0;
  broker_msgs_.clear();
  broker_pubs_.clear();
  broker_deliveries_.clear();
}

void Stats::count_broker_message(BrokerId b, bool publication) {
  ++broker_msgs_[b];
  if (publication) ++broker_pubs_[b];
}

void Stats::count_delivery(BrokerId b, ClientId client) {
  (void)client;
  ++deliveries_;
  ++broker_deliveries_[b];
}

std::map<BrokerId, std::uint64_t> Stats::broker_pub_loads() const {
  std::map<BrokerId, std::uint64_t> loads = broker_pubs_;
  for (const auto& [b, n] : broker_deliveries_) loads[b] += n;
  return loads;
}

LoadSkew Stats::pub_load_skew(std::uint32_t brokers) const {
  return load_skew(broker_pub_loads(), brokers);
}

LoadSkew load_skew(const std::map<BrokerId, std::uint64_t>& loads,
                   std::uint32_t brokers) {
  LoadSkew s;
  if (brokers == 0) return s;
  std::uint64_t total = 0;
  for (const auto& [b, n] : loads) {
    total += n;
    if (static_cast<double>(n) > s.max) {
      s.max = static_cast<double>(n);
      s.argmax = b;
    }
  }
  s.mean = static_cast<double>(total) / static_cast<double>(brokers);
  return s;
}

void Stats::record_movement(MovementRecord rec) {
  rec.messages = messages_for_cause(rec.txn);
  if (rec.txn != kNoTxn) {
    movement_index_.emplace(rec.txn, movements_.size());
  }
  movements_.push_back(std::move(rec));
}

Summary Stats::latency_summary(SimTime from, SimTime to) const {
  Summary s;
  for (const auto& m : movements_) {
    if (m.committed && m.start >= from && m.start < to) s.add(m.duration());
  }
  return s;
}

std::uint64_t Stats::committed_movements(SimTime from, SimTime to) const {
  std::uint64_t n = 0;
  for (const auto& m : movements_) {
    if (m.committed && m.start >= from && m.start < to) ++n;
  }
  return n;
}

double Stats::messages_per_movement(SimTime from, SimTime to) const {
  std::uint64_t msgs = 0, n = 0;
  for (const auto& m : movements_) {
    if (m.committed && m.start >= from && m.start < to) {
      msgs += messages_for_cause(m.txn);
      ++n;
    }
  }
  return n ? static_cast<double>(msgs) / static_cast<double>(n) : 0.0;
}

}  // namespace tmps
