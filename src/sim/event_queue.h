// Discrete-event scheduler: the clock of the simulated distributed system.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace tmps {

/// Simulated time in seconds.
using SimTime = double;

class EventQueue {
 public:
  using Action = std::function<void()>;

  SimTime now() const { return now_; }

  /// Schedules `action` at absolute time `t`. Events at equal times run in
  /// scheduling order (stable). A time already in the past is clamped to
  /// `now` — the action runs as soon as possible.
  void schedule_at(SimTime t, Action action);

  /// Schedules `action` `delay` seconds from now.
  void schedule_in(SimTime delay, Action action) {
    schedule_at(now_ + delay, std::move(action));
  }

  bool empty() const { return heap_.empty(); }
  std::size_t pending() const { return heap_.size(); }

  /// Runs the next event; returns false when none remain.
  bool step();

  /// Runs events until the queue is empty.
  void run();

  /// Runs events with timestamp <= `t`, then advances the clock to `t`.
  void run_until(SimTime t);

  /// Total events executed (for runaway detection in tests).
  std::uint64_t executed() const { return executed_; }

 private:
  struct Event {
    SimTime t;
    std::uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  SimTime now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t executed_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
};

}  // namespace tmps
