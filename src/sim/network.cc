#include "sim/network.h"

#include <cassert>
#include <cmath>

namespace tmps {

NetworkProfile NetworkProfile::lan() { return NetworkProfile{}; }

NetworkProfile NetworkProfile::planetlab() {
  NetworkProfile p;
  p.link_delay = 0.040;
  p.link_service = 0.0002;
  // PlanetLab nodes are shared and slow: every message class costs more.
  p.pub_proc = 0.008;
  p.sub_proc = 0.025;
  p.control_proc = 0.004;
  p.delay_jitter = 0.020;
  p.heterogeneous_links = true;
  return p;
}

SimNetwork::SimNetwork(const Overlay& overlay, BrokerConfig broker_cfg,
                       NetworkProfile profile)
    : overlay_(&overlay), profile_(profile), rng_(profile.seed) {
  tracer_.set_clock([this] { return events_.now(); });
  msgs_sent_ = &metrics_.counter("sim_messages_total");
  msgs_dropped_ = &metrics_.counter("sim_messages_dropped_total");
  link_wait_ = &metrics_.histogram("sim_link_wait_seconds");
  broker_wait_ = &metrics_.histogram("sim_broker_wait_seconds");
  brokers_.resize(overlay.broker_count() + 1);
  for (BrokerId b = 1; b <= overlay.broker_count(); ++b) {
    brokers_[b].broker = std::make_unique<Broker>(b, overlay_, broker_cfg);
    brokers_[b].broker->set_observability(&tracer_, &metrics_);
    brokers_[b].broker->set_clock([this] { return events_.now(); });
    // Provenance latencies feed Stats from the same samples the histograms
    // observe, so bench summaries and histogram percentiles agree.
    brokers_[b].broker->set_delivery_latency_sink(
        [this](double s) { stats_.record_delivery_latency(s); });
  }
  // Pre-create directed link states; heterogeneous profiles draw a per-link
  // base delay once (log-normal around the configured mean) and use it for
  // both directions.
  std::lognormal_distribution<double> logn(std::log(profile_.link_delay), 0.7);
  for (const auto& [a, b] : overlay.edges()) {
    double d = profile_.link_delay;
    if (profile_.heterogeneous_links) d = logn(rng_);
    links_[{a, b}].base_delay = d;
    links_[{b, a}].base_delay = d;
  }
}

SimNetwork::~SimNetwork() = default;

Broker& SimNetwork::broker(BrokerId id) {
  assert(id >= 1 && id < brokers_.size());
  return *brokers_[id].broker;
}

void SimNetwork::schedule(double delay, std::function<void()> fn) {
  events_.schedule_in(delay, std::move(fn));
}

void SimNetwork::movement_finished(MovementRecord rec) {
  stats_.record_movement(std::move(rec));
}

void SimNetwork::on_cause_drained(TxnId cause, std::function<void()> fn) {
  auto it = outstanding_.find(cause);
  if (it == outstanding_.end() || it->second == 0) {
    fn();
    return;
  }
  drain_watchers_[cause].push_back(std::move(fn));
}

std::uint64_t SimNetwork::outstanding(TxnId cause) const {
  auto it = outstanding_.find(cause);
  return it == outstanding_.end() ? 0 : it->second;
}

SimNetwork::LinkState& SimNetwork::link(BrokerId from, BrokerId to) {
  auto it = links_.find({from, to});
  assert(it != links_.end() && "message sent over a non-existent link");
  return it->second;
}

double SimNetwork::jitter() {
  if (profile_.delay_jitter <= 0) return 0;
  std::exponential_distribution<double> exp(1.0 / profile_.delay_jitter);
  return exp(rng_);
}

void SimNetwork::transmit(BrokerId from, Broker::Outputs outputs) {
  for (auto& [to, msg] : outputs) send_one(from, to, std::move(msg));
}

void SimNetwork::run_local(BrokerId b,
                           const std::function<Broker::Outputs(Broker&)>& op) {
  transmit(b, op(broker(b)));
}

void SimNetwork::send_one(BrokerId from, BrokerId to, Message msg) {
  FaultAction fault;
  if (fault_hook_) fault = fault_hook_(from, to, msg);

  if (profile_.duplicate_prob > 0) {
    std::bernoulli_distribution dup(profile_.duplicate_prob);
    if (dup(rng_)) {
      Message copy = msg;
      // Recurse once with duplication disabled for the copy (bounded).
      const double saved = profile_.duplicate_prob;
      profile_.duplicate_prob = 0;
      send_one(from, to, std::move(copy));
      profile_.duplicate_prob = saved;
    }
  }
  if (fault.duplicate) {
    // The injected copy bypasses the FIFO clamp: it models a late
    // retransmission and may arrive after (and reordered with) traffic
    // sent much later.
    Message copy = msg;
    stats_.count_message(from, to, copy.type_name(), copy.cause);
    if (copy.cause != kNoTxn) ++outstanding_[copy.cause];
    msgs_sent_->inc();
    const double at = events_.now() + profile_.link_service +
                      link(from, to).base_delay + fault.duplicate_delay;
    events_.schedule_at(at, [this, from, to, m = std::move(copy)]() mutable {
      arrive(from, to, std::move(m));
    });
  }

  stats_.count_message(from, to, msg.type_name(), msg.cause);
  if (fault.drop) {
    // A genuine loss: never arrives, and its cause tag is not incremented
    // so causal drains above still terminate.
    msgs_dropped_->inc();
    return;
  }
  if (msg.cause != kNoTxn) ++outstanding_[msg.cause];
  msgs_sent_->inc();

  LinkState& l = link(from, to);
  const double now = events_.now();
  const double start = std::max({now, l.next_free, l.paused_until});
  link_wait_->observe(start - now);
  const double depart = start + profile_.link_service;
  l.next_free = depart;
  double at = depart + l.base_delay + jitter() + fault.extra_delay;
  if (fault.extra_delay > 0) {
    // An injected delay deliberately breaks FIFO: later traffic may
    // overtake this message (and l.last_arrival is left alone so it does
    // not hold later messages back).
  } else {
    // Links are FIFO: jitter must not reorder messages in one direction.
    at = std::max(at, l.last_arrival);
    l.last_arrival = at;
  }
  events_.schedule_at(at, [this, from, to, m = std::move(msg)]() mutable {
    arrive(from, to, std::move(m));
  });
}

void SimNetwork::arrive(BrokerId from, BrokerId to, Message msg) {
  BrokerState& b = brokers_[to];
  const double start =
      std::max({events_.now(), b.next_free, b.paused_until});
  broker_wait_->observe(start - events_.now());
  // Per-message processing cost by class: publications pay a matching pass,
  // (un)subscriptions/(un)advertisements pay covering checks, movement
  // control messages pay only relay/bookkeeping work.
  double proc = profile_.control_proc;
  const bool is_pub = std::holds_alternative<PublishMsg>(msg.payload);
  if (is_pub) {
    proc = profile_.pub_proc;
  } else if (!msg.is_control()) {
    proc = profile_.sub_proc;
  }
  stats_.count_broker_message(to, is_pub);
  if (profile_.proc_per_entry > 0 && !msg.is_control()) {
    const auto entries = b.broker->tables().sub_count() +
                         b.broker->tables().adv_count();
    proc += profile_.proc_per_entry * static_cast<double>(entries);
  }
  const double done = start + proc;
  b.next_free = done;
  b.busy_seconds += proc;
  events_.schedule_at(done, [this, from, to, m = std::move(msg)]() mutable {
    process(from, to, std::move(m));
  });
}

void SimNetwork::process(BrokerId from, BrokerId to, Message msg) {
  Broker::Outputs outputs = broker(to).on_message(from, msg);
  // Children are counted before this message is retired so a causal chain
  // only reads as drained when it truly is.
  transmit(to, std::move(outputs));
  if (msg.cause != kNoTxn) {
    auto it = outstanding_.find(msg.cause);
    assert(it != outstanding_.end() && it->second > 0);
    if (--it->second == 0) {
      auto w = drain_watchers_.find(msg.cause);
      if (w != drain_watchers_.end()) {
        auto fns = std::move(w->second);
        drain_watchers_.erase(w);
        for (auto& fn : fns) fn();
      }
      outstanding_.erase(it);
    }
  }
}

double SimNetwork::broker_busy_seconds(BrokerId b) const {
  assert(b >= 1 && b < brokers_.size());
  return brokers_[b].busy_seconds;
}

double SimNetwork::broker_backlog_seconds(BrokerId b) const {
  assert(b >= 1 && b < brokers_.size());
  const double backlog = brokers_[b].next_free - events_.now();
  return backlog > 0 ? backlog : 0.0;
}

void SimNetwork::snapshot_routing(std::vector<obs::BrokerSnapshot>& out,
                                  bool final_snapshot) {
  for (BrokerId b = 1; b < brokers_.size(); ++b) {
    obs::BrokerSnapshot snap;
    snap.time = events_.now();
    snap.final_snapshot = final_snapshot;
    brokers_[b].broker->snapshot(snap);
    out.push_back(std::move(snap));
  }
}

void SimNetwork::pause_broker(BrokerId b, double duration) {
  auto& st = brokers_[b];
  st.paused_until = std::max(st.paused_until, events_.now() + duration);
}

void SimNetwork::pause_link(BrokerId a, BrokerId b, double duration) {
  const double until = events_.now() + duration;
  for (auto key : {std::pair{a, b}, std::pair{b, a}}) {
    auto& l = links_[key];
    l.paused_until = std::max(l.paused_until, until);
  }
}

}  // namespace tmps
