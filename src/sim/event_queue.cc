#include "sim/event_queue.h"

#include <cassert>
#include <utility>

namespace tmps {

void EventQueue::schedule_at(SimTime t, Action action) {
  if (t < now_) t = now_;  // the past is not available; run asap
  heap_.push(Event{t, seq_++, std::move(action)});
}

bool EventQueue::step() {
  if (heap_.empty()) return false;
  // priority_queue::top() is const; move out via const_cast — safe because
  // we pop immediately and never touch the moved-from Action.
  Event ev = std::move(const_cast<Event&>(heap_.top()));
  heap_.pop();
  now_ = ev.t;
  ++executed_;
  ev.action();
  return true;
}

void EventQueue::run() {
  while (step()) {
  }
}

void EventQueue::run_until(SimTime t) {
  while (!heap_.empty() && heap_.top().t <= t) step();
  if (now_ < t) now_ = t;
}

}  // namespace tmps
