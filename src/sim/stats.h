// Metrics collected by the simulation harness: the three quantities the
// paper's evaluation reports (Sec. 5) plus supporting breakdowns.
//
//   * network traffic — messages transmitted per overlay link, total and
//     attributed to individual movement transactions via the cause tag;
//   * movement duration — wall-clock (simulated) time per movement;
//   * movement throughput — completed movements over the experiment window.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/ids.h"
#include "obs/log_buckets.h"
#include "sim/event_queue.h"

namespace tmps {

/// Streaming summary of a series (latencies etc.). Alongside the moment
/// statistics it maintains fixed log-bucket counts (obs/log_buckets.h), so
/// tail quantiles are available without storing samples — bucket-resolution
/// approximations (~±9% relative error), which is what the stability
/// comparisons in the paper's figures need.
class Summary {
 public:
  void add(double x);
  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double variance() const;
  double stddev() const;

  /// Bucket-interpolated quantile of everything added so far, clamped to
  /// the observed [min, max] range. q in [0, 1]; 0 for an empty summary.
  double percentile(double q) const;
  double p50() const { return percentile(0.50); }
  double p95() const { return percentile(0.95); }
  double p99() const { return percentile(0.99); }

 private:
  std::uint64_t n_ = 0;
  double sum_ = 0, sumsq_ = 0;
  double min_ = 0, max_ = 0;
  std::array<std::uint64_t, obs::kNumBuckets> buckets_{};
};

/// Per-broker load distribution at a glance: the max/mean ratio is the
/// imbalance figure the load-balancing control plane (src/control) drives
/// down, and what the skewed-placement tests assert on. `mean` averages
/// over all `brokers` brokers, including idle ones.
struct LoadSkew {
  double max = 0;
  double mean = 0;
  BrokerId argmax = kNoBroker;
  /// max/mean; 1.0 for a perfectly even (or empty) distribution.
  double ratio() const { return mean > 0 ? max / mean : 1.0; }
};

/// Skew of an absolute per-broker load map over brokers 1..`brokers`
/// (brokers absent from the map count as zero load).
LoadSkew load_skew(const std::map<BrokerId, std::uint64_t>& loads,
                   std::uint32_t brokers);

struct MovementRecord {
  TxnId txn = kNoTxn;
  ClientId client = kNoClient;
  BrokerId source = kNoBroker;
  BrokerId target = kNoBroker;
  SimTime start = 0;
  SimTime end = 0;
  bool committed = false;
  /// Messages attributed to this movement (filled from cause-tag counts).
  std::uint64_t messages = 0;

  double duration() const { return end - start; }
};

class Stats {
 public:
  // --- network traffic ---
  void count_message(BrokerId from, BrokerId to, std::string_view type,
                     TxnId cause);

  std::uint64_t total_messages() const { return total_messages_; }
  std::uint64_t messages_by_type(const std::string& type) const;
  std::uint64_t messages_for_cause(TxnId cause) const;
  const std::map<std::pair<BrokerId, BrokerId>, std::uint64_t>& link_counts()
      const {
    return link_counts_;
  }
  const std::map<std::string, std::uint64_t>& type_counts() const {
    return type_counts_;
  }

  /// Forgets traffic accounted so far (used to exclude the setup phase, as
  /// the paper does: "we ignore this setup phase in subsequent results").
  void reset_traffic();

  // --- movements ---
  void record_movement(MovementRecord rec);
  const std::vector<MovementRecord>& movements() const { return movements_; }
  std::vector<MovementRecord>& movements() { return movements_; }

  /// Summary over committed movements that *started* in [from, to).
  Summary latency_summary(SimTime from = 0,
                          SimTime to = 1e300) const;
  std::uint64_t committed_movements(SimTime from = 0, SimTime to = 1e300) const;
  /// Mean messages per committed movement in the window.
  double messages_per_movement(SimTime from = 0, SimTime to = 1e300) const;

  // --- per-broker load (control-plane + skew assertions) ---

  /// One message processed at broker `b`; `publication` marks a matching
  /// pass (PublishMsg) as opposed to routing/control work.
  void count_broker_message(BrokerId b, bool publication);
  /// One local delivery at broker `b` to `client` (the fan-out work that
  /// concentrates where clients concentrate).
  void count_delivery(BrokerId b, ClientId client);
  std::uint64_t deliveries() const { return deliveries_; }

  // --- end-to-end delivery latency (publication provenance) ---

  /// One provenance-derived end-to-end delivery latency (publish at the
  /// origin broker to delivery at the edge broker). Fed by SimNetwork's
  /// per-broker latency sink from the same samples the provenance
  /// histograms observe, so the two summaries agree within bucket
  /// quantization.
  void record_delivery_latency(double seconds) {
    delivery_latency_.add(seconds);
  }
  const Summary& delivery_latency_summary() const { return delivery_latency_; }

  const std::map<BrokerId, std::uint64_t>& broker_messages() const {
    return broker_msgs_;
  }
  /// Publication load per broker: publications processed + local
  /// deliveries. The quantity whose max/mean ratio the balancer minimizes.
  std::map<BrokerId, std::uint64_t> broker_pub_loads() const;
  /// Local delivery load per broker — the client-serving fan-out work that
  /// migration relocates (transit forwarding is topology-bound and stays).
  const std::map<BrokerId, std::uint64_t>& broker_delivery_loads() const {
    return broker_deliveries_;
  }
  /// load_skew over broker_pub_loads (brokers 1..`brokers`).
  LoadSkew pub_load_skew(std::uint32_t brokers) const;

 private:
  std::uint64_t total_messages_ = 0;
  std::uint64_t deliveries_ = 0;
  std::map<BrokerId, std::uint64_t> broker_msgs_;
  std::map<BrokerId, std::uint64_t> broker_pubs_;
  std::map<BrokerId, std::uint64_t> broker_deliveries_;
  std::map<std::pair<BrokerId, BrokerId>, std::uint64_t> link_counts_;
  std::map<std::string, std::uint64_t> type_counts_;
  std::map<TxnId, std::uint64_t> cause_counts_;
  Summary delivery_latency_;
  std::vector<MovementRecord> movements_;
  /// txn -> index into movements_, so messages attributed to a movement
  /// *after* its record was captured (covering-induced (un)subscriptions
  /// still cascading at brokers off the movement path) reach the record.
  std::map<TxnId, std::size_t> movement_index_;
};

}  // namespace tmps
