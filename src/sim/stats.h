// Metrics collected by the simulation harness: the three quantities the
// paper's evaluation reports (Sec. 5) plus supporting breakdowns.
//
//   * network traffic — messages transmitted per overlay link, total and
//     attributed to individual movement transactions via the cause tag;
//   * movement duration — wall-clock (simulated) time per movement;
//   * movement throughput — completed movements over the experiment window.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/ids.h"
#include "obs/log_buckets.h"
#include "sim/event_queue.h"

namespace tmps {

/// Streaming summary of a series (latencies etc.). Alongside the moment
/// statistics it maintains fixed log-bucket counts (obs/log_buckets.h), so
/// tail quantiles are available without storing samples — bucket-resolution
/// approximations (~±9% relative error), which is what the stability
/// comparisons in the paper's figures need.
class Summary {
 public:
  void add(double x);
  std::uint64_t count() const { return n_; }
  double mean() const { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double variance() const;
  double stddev() const;

  /// Bucket-interpolated quantile of everything added so far, clamped to
  /// the observed [min, max] range. q in [0, 1]; 0 for an empty summary.
  double percentile(double q) const;
  double p50() const { return percentile(0.50); }
  double p95() const { return percentile(0.95); }
  double p99() const { return percentile(0.99); }

 private:
  std::uint64_t n_ = 0;
  double sum_ = 0, sumsq_ = 0;
  double min_ = 0, max_ = 0;
  std::array<std::uint64_t, obs::kNumBuckets> buckets_{};
};

struct MovementRecord {
  TxnId txn = kNoTxn;
  ClientId client = kNoClient;
  BrokerId source = kNoBroker;
  BrokerId target = kNoBroker;
  SimTime start = 0;
  SimTime end = 0;
  bool committed = false;
  /// Messages attributed to this movement (filled from cause-tag counts).
  std::uint64_t messages = 0;

  double duration() const { return end - start; }
};

class Stats {
 public:
  // --- network traffic ---
  void count_message(BrokerId from, BrokerId to, std::string_view type,
                     TxnId cause);

  std::uint64_t total_messages() const { return total_messages_; }
  std::uint64_t messages_by_type(const std::string& type) const;
  std::uint64_t messages_for_cause(TxnId cause) const;
  const std::map<std::pair<BrokerId, BrokerId>, std::uint64_t>& link_counts()
      const {
    return link_counts_;
  }
  const std::map<std::string, std::uint64_t>& type_counts() const {
    return type_counts_;
  }

  /// Forgets traffic accounted so far (used to exclude the setup phase, as
  /// the paper does: "we ignore this setup phase in subsequent results").
  void reset_traffic();

  // --- movements ---
  void record_movement(MovementRecord rec);
  const std::vector<MovementRecord>& movements() const { return movements_; }
  std::vector<MovementRecord>& movements() { return movements_; }

  /// Summary over committed movements that *started* in [from, to).
  Summary latency_summary(SimTime from = 0,
                          SimTime to = 1e300) const;
  std::uint64_t committed_movements(SimTime from = 0, SimTime to = 1e300) const;
  /// Mean messages per committed movement in the window.
  double messages_per_movement(SimTime from = 0, SimTime to = 1e300) const;

  // --- notifications (delivery auditing) ---
  void count_delivery(ClientId client) { (void)client; ++deliveries_; }
  std::uint64_t deliveries() const { return deliveries_; }

 private:
  std::uint64_t total_messages_ = 0;
  std::uint64_t deliveries_ = 0;
  std::map<std::pair<BrokerId, BrokerId>, std::uint64_t> link_counts_;
  std::map<std::string, std::uint64_t> type_counts_;
  std::map<TxnId, std::uint64_t> cause_counts_;
  std::vector<MovementRecord> movements_;
  /// txn -> index into movements_, so messages attributed to a movement
  /// *after* its record was captured (covering-induced (un)subscriptions
  /// still cascading at brokers off the movement path) reach the record.
  std::map<TxnId, std::size_t> movement_index_;
};

}  // namespace tmps
