#include "failure/failure_injector.h"

namespace tmps {

std::string FailureInjector::Event::to_string() const {
  std::string s = is_link ? "link " + std::to_string(broker) + "-" +
                                std::to_string(peer)
                          : "broker " + std::to_string(broker);
  return s + " down at " + std::to_string(at) + " for " +
         std::to_string(duration) + "s";
}

FailureInjector::FailureInjector(SimNetwork& net, FailurePlan plan)
    : net_(&net), plan_(plan), rng_(plan.seed) {}

void FailureInjector::schedule_until(SimTime horizon) {
  const auto& overlay = net_->overlay();
  std::exponential_distribution<double> broker_down(
      1.0 / plan_.broker_downtime_mean);
  std::exponential_distribution<double> link_down(
      1.0 / plan_.link_downtime_mean);
  std::uniform_int_distribution<BrokerId> pick_broker(1,
                                                      overlay.broker_count());
  std::uniform_int_distribution<std::size_t> pick_edge(
      0, overlay.edges().size() - 1);

  if (plan_.broker_crash_rate > 0) {
    std::exponential_distribution<double> gap(plan_.broker_crash_rate);
    for (double t = net_->now() + gap(rng_); t < horizon; t += gap(rng_)) {
      crash_broker_at(pick_broker(rng_), t, broker_down(rng_));
    }
  }
  if (plan_.link_failure_rate > 0 && !overlay.edges().empty()) {
    std::exponential_distribution<double> gap(plan_.link_failure_rate);
    for (double t = net_->now() + gap(rng_); t < horizon; t += gap(rng_)) {
      const auto& [a, b] = overlay.edges()[pick_edge(rng_)];
      fail_link_at(a, b, t, link_down(rng_));
    }
  }
}

void FailureInjector::crash_broker_at(BrokerId b, SimTime at,
                                      double duration) {
  log_.push_back(Event{at, duration, false, b, kNoBroker});
  net_->events().schedule_at(at, [this, b, duration] {
    net_->pause_broker(b, duration);
  });
}

void FailureInjector::fail_link_at(BrokerId a, BrokerId b, SimTime at,
                                   double duration) {
  log_.push_back(Event{at, duration, true, a, b});
  net_->events().schedule_at(at, [this, a, b, duration] {
    net_->pause_link(a, b, duration);
  });
}

void FailureInjector::arm(MessageFault fault) {
  faults_.push_back(std::move(fault));
  if (!hook_installed_) {
    hook_installed_ = true;
    net_->set_fault_hook(
        [this](BrokerId from, BrokerId to, const Message& msg) {
          return on_message(from, to, msg);
        });
  }
}

FaultAction FailureInjector::on_message(BrokerId from, BrokerId to,
                                        const Message& msg) {
  for (MessageFault& f : faults_) {
    if (f.count == 0) continue;
    if (!f.type.empty() && msg.type_name() != f.type) continue;
    if (f.from != kNoBroker && from != f.from) continue;
    if (f.to != kNoBroker && to != f.to) continue;
    if (f.cause != kNoTxn && msg.cause != f.cause) continue;
    if (net_->now() < f.after) continue;
    if (f.count > 0) --f.count;
    hits_.push_back(FaultHit{net_->now(), std::string(msg.type_name()), from,
                             to, msg.cause, f.action});
    FaultAction action;
    switch (f.action) {
      case MessageFault::Action::Drop: action.drop = true; break;
      case MessageFault::Action::Duplicate:
        action.duplicate = true;
        action.duplicate_delay = f.delay;
        break;
      case MessageFault::Action::Delay: action.extra_delay = f.delay; break;
    }
    return action;
  }
  return {};
}

}  // namespace tmps
