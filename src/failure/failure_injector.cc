#include "failure/failure_injector.h"

#include <algorithm>

#include "obs/trace.h"

namespace tmps {

namespace {
const char* action_name(MessageFault::Action a) {
  switch (a) {
    case MessageFault::Action::Drop: return "drop";
    case MessageFault::Action::Duplicate: return "duplicate";
    case MessageFault::Action::Delay: return "delay";
  }
  return "?";
}
}  // namespace

std::string FailureInjector::Event::to_string() const {
  std::string s = is_link ? "link " + std::to_string(broker) + "-" +
                                std::to_string(peer)
                          : "broker " + std::to_string(broker);
  return s + " down at " + std::to_string(at) + " for " +
         std::to_string(duration) + "s";
}

FailureInjector::FailureInjector(SimNetwork& net, FailurePlan plan)
    : net_(&net), plan_(plan), rng_(plan.seed) {
  TMPS_EVENT(net_->tracer(), kNoTxn, "fault:plan",
             {{"seed", std::to_string(plan_.seed)},
              {"broker_crash_rate", std::to_string(plan_.broker_crash_rate)},
              {"link_failure_rate", std::to_string(plan_.link_failure_rate)}});
}

void FailureInjector::schedule_until(SimTime horizon) {
  const auto& overlay = net_->overlay();
  std::exponential_distribution<double> broker_down(
      1.0 / plan_.broker_downtime_mean);
  std::exponential_distribution<double> link_down(
      1.0 / plan_.link_downtime_mean);
  std::uniform_int_distribution<BrokerId> pick_broker(1,
                                                      overlay.broker_count());
  std::uniform_int_distribution<std::size_t> pick_edge(
      0, overlay.edges().size() - 1);

  if (plan_.broker_crash_rate > 0) {
    std::exponential_distribution<double> gap(plan_.broker_crash_rate);
    for (double t = net_->now() + gap(rng_); t < horizon; t += gap(rng_)) {
      crash_broker_at(pick_broker(rng_), t, broker_down(rng_));
    }
  }
  if (plan_.link_failure_rate > 0 && !overlay.edges().empty()) {
    std::exponential_distribution<double> gap(plan_.link_failure_rate);
    for (double t = net_->now() + gap(rng_); t < horizon; t += gap(rng_)) {
      const auto& [a, b] = overlay.edges()[pick_edge(rng_)];
      fail_link_at(a, b, t, link_down(rng_));
    }
  }
}

void FailureInjector::crash_broker_at(BrokerId b, SimTime at,
                                      double duration) {
  log_.push_back(Event{at, duration, false, b, kNoBroker});
  net_->events().schedule_at(at, [this, b, duration] {
    TMPS_EVENT(net_->tracer(), kNoTxn, "fault:crash",
               {{"broker", std::to_string(b)},
                {"duration", std::to_string(duration)}});
    net_->pause_broker(b, duration);
  });
}

void FailureInjector::fail_link_at(BrokerId a, BrokerId b, SimTime at,
                                   double duration) {
  log_.push_back(Event{at, duration, true, a, b});
  net_->events().schedule_at(at, [this, a, b, duration] {
    TMPS_EVENT(net_->tracer(), kNoTxn, "fault:link",
               {{"a", std::to_string(a)},
                {"b", std::to_string(b)},
                {"duration", std::to_string(duration)}});
    net_->pause_link(a, b, duration);
  });
}

void FailureInjector::arm(MessageFault fault) {
  faults_.push_back(std::move(fault));
  ensure_hook();
}

void FailureInjector::crash_at_phase(PhaseCrash crash) {
  phase_crashes_.push_back(std::move(crash));
  ensure_hook();
}

void FailureInjector::ensure_hook() {
  if (!hook_installed_) {
    hook_installed_ = true;
    net_->set_fault_hook(
        [this](BrokerId from, BrokerId to, const Message& msg) {
          return on_message(from, to, msg);
        });
  }
}

FaultAction FailureInjector::on_message(BrokerId from, BrokerId to,
                                        const Message& msg) {
  if (msg.is_control() && !blackout_until_.empty()) {
    // Active control blackout: the victim's volatile 3PC conversation is
    // gone, so control traffic to or from it vanishes.
    for (BrokerId end : {from, to}) {
      auto it = blackout_until_.find(end);
      if (it == blackout_until_.end()) continue;
      if (net_->now() >= it->second) {
        blackout_until_.erase(it);
        continue;
      }
      hits_.push_back(FaultHit{net_->now(), std::string(msg.type_name()),
                               from, to, msg.cause,
                               MessageFault::Action::Drop});
      FaultAction drop;
      drop.drop = true;
      return drop;
    }
  }
  if (msg.is_control()) {
    for (PhaseCrash& pc : phase_crashes_) {
      if (pc.count == 0) continue;
      if (from != pc.victim && to != pc.victim) continue;
      if (msg.type_name() != pc.phase) continue;
      if (net_->now() < pc.after) continue;
      if (pc.count > 0) --pc.count;
      const double now = net_->now();
      blackout_until_[pc.victim] =
          std::max(blackout_until_[pc.victim], now + pc.outage);
      log_.push_back(Event{now, pc.outage, false, pc.victim, kNoBroker});
      TMPS_EVENT(net_->tracer(), msg.cause, "fault:phase-crash",
                 {{"victim", std::to_string(pc.victim)},
                  {"phase", pc.phase},
                  {"outage", std::to_string(pc.outage)}});
      net_->pause_broker(pc.victim, pc.outage);
      // The triggering message itself is part of the lost conversation.
      hits_.push_back(FaultHit{now, std::string(msg.type_name()), from, to,
                               msg.cause, MessageFault::Action::Drop});
      FaultAction drop;
      drop.drop = true;
      return drop;
    }
  }
  for (MessageFault& f : faults_) {
    if (f.count == 0) continue;
    if (!f.type.empty() && msg.type_name() != f.type) continue;
    if (f.from != kNoBroker && from != f.from) continue;
    if (f.to != kNoBroker && to != f.to) continue;
    if (f.cause != kNoTxn && msg.cause != f.cause) continue;
    if (net_->now() < f.after) continue;
    if (f.count > 0) --f.count;
    hits_.push_back(FaultHit{net_->now(), std::string(msg.type_name()), from,
                             to, msg.cause, f.action});
    TMPS_EVENT(net_->tracer(), msg.cause, "fault:hit",
               {{"action", action_name(f.action)},
                {"type", std::string(msg.type_name())},
                {"from", std::to_string(from)},
                {"to", std::to_string(to)}});
    FaultAction action;
    switch (f.action) {
      case MessageFault::Action::Drop: action.drop = true; break;
      case MessageFault::Action::Duplicate:
        action.duplicate = true;
        action.duplicate_delay = f.delay;
        break;
      case MessageFault::Action::Delay: action.extra_delay = f.delay; break;
    }
    return action;
  }
  return {};
}

}  // namespace tmps
