// Failure injection for the simulated network, following the paper's fault
// model (Sec. 3.5/4.1): broker crashes and link failures are *masked* by
// persistence and retransmission — messages are delayed, never lost — so a
// failure appears as a pause of the affected component.
//
// The injector pre-schedules a randomized failure plan onto the simulation's
// event queue; property tests then assert that the transactional guarantees
// hold regardless.
#pragma once

#include <map>
#include <random>
#include <string>
#include <vector>

#include "sim/network.h"

namespace tmps {

/// One targeted *unmasked* message fault — the injector's way of stepping
/// outside the paper's fault model (where failures only delay). Used by the
/// auditor tests: a fault must either be absorbed by the protocol or show up
/// as an attributed invariant violation.
struct MessageFault {
  enum class Action { Drop, Duplicate, Delay };
  Action action = Action::Drop;

  // Match criteria; empty / kNo* values are wildcards.
  std::string type;             // Message::type_name(), e.g. "move-state"
  BrokerId from = kNoBroker;    // sending link endpoint
  BrokerId to = kNoBroker;      // receiving link endpoint
  TxnId cause = kNoTxn;         // message's cause tag
  double after = 0;             // only messages entering the link at/after t
  /// How many matching messages to hit before the fault disarms; -1 = all.
  int count = 1;
  /// Delay: extra latency on the message. Duplicate: extra latency on the
  /// injected copy (a late retransmission). Both bypass link FIFO order.
  double delay = 0;
};

/// Deterministic phase-targeted crash. The victim "crashes" the instant a
/// movement-protocol control message of the named phase
/// (Message::type_name(), e.g. "move-approve") transits a link to or from
/// it: for `outage` seconds every control message to or from the victim is
/// dropped (the triggering message included — the volatile 3PC conversation
/// is lost), while its data-plane traffic only sees the masked
/// `pause_broker` delay. This models the paper's durable-broker fault
/// model: routing tables and store-and-forward queues survive a
/// crash-restart, the in-memory movement conversation does not. The repair
/// loop (src/repair) is what heals the aftermath.
struct PhaseCrash {
  BrokerId victim = kNoBroker;
  std::string phase;    // triggering control Message::type_name()
  double outage = 1.0;  // control blackout + masked data delay
  double after = 0;     // armed only from this simulation time on
  int count = 1;        // trigger this many times; -1 = every occurrence
};

struct FailurePlan {
  /// Expected broker crashes per second, network-wide (Poisson).
  double broker_crash_rate = 0.0;
  /// Mean broker recovery time (exponential).
  double broker_downtime_mean = 1.0;
  /// Expected link failures per second, network-wide (Poisson).
  double link_failure_rate = 0.0;
  /// Mean link repair time (exponential).
  double link_downtime_mean = 1.0;
  /// Randomized schedules are a pure function of the seed. Scenario-driven
  /// call sites should plumb `ScenarioConfig::seed` in here so one seed
  /// reproduces workload *and* faults; the injector logs the seed (and every
  /// drawn event) as `fault:*` trace events for post-hoc reconstruction.
  std::uint64_t seed = 1;
};

class FailureInjector {
 public:
  struct Event {
    double at = 0;
    double duration = 0;
    bool is_link = false;
    BrokerId broker = kNoBroker;  // crashed broker, or one link endpoint
    BrokerId peer = kNoBroker;    // other link endpoint (links only)

    std::string to_string() const;
  };

  FailureInjector(SimNetwork& net, FailurePlan plan);

  /// Draws and schedules all failures occurring before `horizon` (absolute
  /// simulation time). Call before (or during) the run.
  void schedule_until(SimTime horizon);

  /// Pauses one specific broker at `at` for `duration` (deterministic
  /// injection for targeted tests).
  void crash_broker_at(BrokerId b, SimTime at, double duration);
  void fail_link_at(BrokerId a, BrokerId b, SimTime at, double duration);

  /// Arms an unmasked message fault (drop/duplicate/delay). The first call
  /// installs this injector as the network's fault hook; faults are
  /// consulted in arming order and the first match applies.
  void arm(MessageFault fault);

  /// Arms a deterministic phase-targeted crash (see PhaseCrash). Active
  /// control blackouts take precedence over armed message faults.
  void crash_at_phase(PhaseCrash crash);

  /// One record per message a fault actually hit.
  struct FaultHit {
    double at = 0;
    std::string type;
    BrokerId from = kNoBroker;
    BrokerId to = kNoBroker;
    TxnId cause = kNoTxn;
    MessageFault::Action action = MessageFault::Action::Drop;
  };
  const std::vector<FaultHit>& fault_hits() const { return hits_; }

  const std::vector<Event>& log() const { return log_; }

 private:
  FaultAction on_message(BrokerId from, BrokerId to, const Message& msg);
  void ensure_hook();

  SimNetwork* net_;
  FailurePlan plan_;
  std::mt19937_64 rng_;
  std::vector<Event> log_;
  std::vector<MessageFault> faults_;
  std::vector<PhaseCrash> phase_crashes_;
  /// victim -> end of the control blackout window (absolute sim time).
  std::map<BrokerId, double> blackout_until_;
  std::vector<FaultHit> hits_;
  bool hook_installed_ = false;
};

}  // namespace tmps
