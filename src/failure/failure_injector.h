// Failure injection for the simulated network, following the paper's fault
// model (Sec. 3.5/4.1): broker crashes and link failures are *masked* by
// persistence and retransmission — messages are delayed, never lost — so a
// failure appears as a pause of the affected component.
//
// The injector pre-schedules a randomized failure plan onto the simulation's
// event queue; property tests then assert that the transactional guarantees
// hold regardless.
#pragma once

#include <random>
#include <string>
#include <vector>

#include "sim/network.h"

namespace tmps {

struct FailurePlan {
  /// Expected broker crashes per second, network-wide (Poisson).
  double broker_crash_rate = 0.0;
  /// Mean broker recovery time (exponential).
  double broker_downtime_mean = 1.0;
  /// Expected link failures per second, network-wide (Poisson).
  double link_failure_rate = 0.0;
  /// Mean link repair time (exponential).
  double link_downtime_mean = 1.0;
  std::uint64_t seed = 1;
};

class FailureInjector {
 public:
  struct Event {
    double at = 0;
    double duration = 0;
    bool is_link = false;
    BrokerId broker = kNoBroker;  // crashed broker, or one link endpoint
    BrokerId peer = kNoBroker;    // other link endpoint (links only)

    std::string to_string() const;
  };

  FailureInjector(SimNetwork& net, FailurePlan plan);

  /// Draws and schedules all failures occurring before `horizon` (absolute
  /// simulation time). Call before (or during) the run.
  void schedule_until(SimTime horizon);

  /// Pauses one specific broker at `at` for `duration` (deterministic
  /// injection for targeted tests).
  void crash_broker_at(BrokerId b, SimTime at, double duration);
  void fail_link_at(BrokerId a, BrokerId b, SimTime at, double duration);

  const std::vector<Event>& log() const { return log_; }

 private:
  SimNetwork* net_;
  FailurePlan plan_;
  std::mt19937_64 rng_;
  std::vector<Event> log_;
};

}  // namespace tmps
