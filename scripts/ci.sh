#!/usr/bin/env bash
# CI entry point: builds and runs the test suite under several
# configurations —
#
#   1. a plain release-ish build (the configuration the benches use);
#   2. an AddressSanitizer+UBSan build (-DTMPS_SANITIZE=address), which has
#      caught lifetime bugs the plain run cannot;
#   3. a ThreadSanitizer build (-DTMPS_SANITIZE=thread) scoped to the
#      threaded code paths: the tcp/inproc transports, the HTTP admin
#      endpoints and the broker fixtures they drive;
#   4. an audit leg: the fig09 workload sweep with tracing and the embedded
#      movement-invariant auditor enabled, re-checked from the emitted JSONL
#      files by tools/tmps_audit. Any invariant violation fails the leg.
#      Bench JSON artifacts (BENCH_*.json) land in results/.
#   5. perf-smoke legs: micro_covering at a small table size and
#      micro_forwarding at the 100k-subscription gate size. Each binary
#      exits nonzero on any index/scan-oracle disagreement (micro_forwarding
#      additionally gates on a >=10x match speedup), and the legs check that
#      the bench JSON artifacts were emitted with speedup figures in them.
#   6. a balancer-soak leg: ext_load_balance drives the load-balancing
#      control plane over a Zipf-skewed placement — with and without
#      background subscription churn — under the movement-invariant auditor.
#      The binary gates on the 2x skew reduction, per-client move budgets
#      (convergence) and delivery losses, and exits nonzero on any miss.
#   7. a chaos leg: ext_self_heal crash-restarts source, target and
#      intermediate brokers at every movement phase (all coordinator
#      timeouts disabled) and gates on the anti-entropy repair loop
#      converging auditor-clean — run under the ASan build so the
#      crash/repair paths also get lifetime checking, with a repair-off
#      negative control that must show damage.
#   8. a flaky-fleet leg: ext_flaky_fleet churns an edge fleet through
#      Zipf-distributed connect/disconnect cycles against the session layer
#      (ASan build) and gates on zero duplicates, exact drop-ledger loss
#      attribution, zero residual session state after the quiet tail, and a
#      delivery-locality win over its cold re-subscribe negative control.
#   9. an observability-overhead gate: obs_overhead_gate times the broker
#      publish path at provenance sample rate 0 vs 1/64 and fails if 1/64
#      sampling costs more than 2% (override via TMPS_GATE_PCT); the same
#      binary gates the stage profiler at <1% compiled-in-but-disabled and
#      <3% enabled at 1/16 sampling (TMPS_GATE_PROF_OFF_PCT /
#      TMPS_GATE_PROF_PCT).
#  10. a perf-regression leg: tools/tmps_benchdiff compares the bench JSON
#      from legs 4 (fig09) plus a fresh fig11 run against the committed
#      baselines in results/baselines/. The simulation metrics are
#      deterministic per seed, so any drift is a real behavior change;
#      wall-clock metrics stay advisory. Refresh the baselines after an
#      intentional change with scripts/run_all.sh --update-baselines.
#
# On any failed leg, flight-recorder dumps (flight_b*.jsonl) from the obs
# sink directories are collected into results/flight/ for post-mortem.
#
# Usage: scripts/ci.sh [jobs]     (default: nproc)
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${1:-$(nproc)}"
RESULTS="results"

# Post-mortem context for a red run: any flight-recorder dump written by a
# failing leg (movement abort, audit violation) is preserved as an artifact.
collect_flight_dumps() {
  local status=$?
  if [[ ${status} -ne 0 ]]; then
    mkdir -p "${RESULTS}/flight"
    find "${RESULTS}" build build-asan build-tsan -name 'flight_b*.jsonl' \
        -not -path "${RESULTS}/flight/*" 2>/dev/null |
      while read -r dump; do
        cp -f "${dump}" "${RESULTS}/flight/$(echo "${dump}" | tr / _)"
      done
    if compgen -G "${RESULTS}/flight/*" > /dev/null; then
      echo "flight-recorder dumps collected in ${RESULTS}/flight/:"
      ls -l "${RESULTS}/flight"
    fi
  fi
  exit "${status}"
}
trap collect_flight_dumps EXIT

run_suite() {
  local build_dir="$1"
  shift
  local ctest_filter=()
  if [[ "${1:-}" == "--filter" ]]; then
    ctest_filter=(-R "$2")
    shift 2
  fi
  echo "=== configure ${build_dir} ($*) ==="
  cmake -B "${build_dir}" -S . "$@"
  echo "=== build ${build_dir} ==="
  cmake --build "${build_dir}" -j "${JOBS}"
  echo "=== test ${build_dir} ==="
  ctest --test-dir "${build_dir}" --output-on-failure -j "${JOBS}" \
    "${ctest_filter[@]}"
}

run_suite build
run_suite build-asan -DTMPS_SANITIZE=address

# ThreadSanitizer on the threaded paths only (the simulator is
# single-threaded; running the whole suite under TSan would triple CI time
# for no extra coverage).
run_suite build-tsan \
  --filter '^(TcpTest|InprocTest|HttpAdmin|BrokerChain|BrokerCovering)' \
  -DTMPS_SANITIZE=thread

echo "=== audit leg: fig09 under the movement-invariant auditor ==="
OBS_DIR="${RESULTS}/fig09-obs"
mkdir -p "${OBS_DIR}"
TMPS_AUDIT=1 TMPS_TRACE="${OBS_DIR}" TMPS_BENCH_OUT="${RESULTS}" \
  ./build/bench/fig09_workload_sweep
# Second opinion from the file-driven CLI over the emitted streams.
./build/tools/tmps_audit "${OBS_DIR}/trace.jsonl" \
  --snapshots "${OBS_DIR}/snapshots.jsonl" --quiet
echo "bench artifacts:"
ls -l "${RESULTS}"/BENCH_*.json

echo "=== perf-smoke leg: covering index vs scan (micro_covering) ==="
# Small table size: fast, but still fails the leg on index/scan divergence.
TMPS_BENCH_OUT="${RESULTS}" ./build/bench/micro_covering 2000
COVERING_JSON="${RESULTS}/BENCH_micro_covering.json"
[[ -s "${COVERING_JSON}" ]] || {
  echo "missing ${COVERING_JSON}"; exit 1; }
grep -q '"speedup":' "${COVERING_JSON}" || {
  echo "no speedup figures in ${COVERING_JSON}"; exit 1; }

echo "=== perf-smoke leg: forwarding core vs scan (micro_forwarding) ==="
# Gate size: every timed publication is cross-checked against the
# match_scan oracle (exit 1 on divergence), and the counting index must
# beat the scan by >=10x at 100k subscriptions.
TMPS_BENCH_OUT="${RESULTS}" ./build/bench/micro_forwarding 100000
FORWARDING_JSON="${RESULTS}/BENCH_micro_forwarding.json"
[[ -s "${FORWARDING_JSON}" ]] || {
  echo "missing ${FORWARDING_JSON}"; exit 1; }
grep -q '"speedup":' "${FORWARDING_JSON}" || {
  echo "no speedup figures in ${FORWARDING_JSON}"; exit 1; }

echo "=== balancer-soak leg: load balancing under churn (ext_load_balance) ==="
TMPS_AUDIT=1 TMPS_BENCH_OUT="${RESULTS}" ./build/bench/ext_load_balance
BALANCE_JSON="${RESULTS}/BENCH_ext_load_balance.json"
[[ -s "${BALANCE_JSON}" ]] || {
  echo "missing ${BALANCE_JSON}"; exit 1; }
grep -q '"load_ratio":' "${BALANCE_JSON}" || {
  echo "no load-skew figures in ${BALANCE_JSON}"; exit 1; }

echo "=== chaos leg: crash-restart self-healing (ext_self_heal, ASan) ==="
# Phase-targeted crashes mid-movement with coordinator timeouts disabled:
# the repair sweeps are the only healer, and the binary exits nonzero if the
# repair-on run is not auditor-clean (or the repair-off control shows no
# damage). The ASan build doubles as a lifetime check on the repair paths.
HEAL_OBS="${RESULTS}/extsh-obs"
mkdir -p "${HEAL_OBS}"
TMPS_AUDIT=1 TMPS_TRACE="${HEAL_OBS}" TMPS_BENCH_OUT="${RESULTS}" \
  ./build-asan/bench/ext_self_heal
HEAL_JSON="${RESULTS}/BENCH_ext_self_heal.json"
[[ -s "${HEAL_JSON}" ]] || {
  echo "missing ${HEAL_JSON}"; exit 1; }
grep -q '"repair_ops_total":' "${HEAL_JSON}" || {
  echo "no repair figures in ${HEAL_JSON}"; exit 1; }
# Second opinion from the file-driven CLI, with the per-broker repair-round
# table. The trace holds both runs, and the repair-off control *must* carry
# violations — a clean exit here means the negative control proved nothing
# (the repair-on run's cleanliness is gated inside the binary).
if ./build/tools/tmps_audit "${HEAL_OBS}/trace.jsonl" --repair-rounds; then
  echo "repair-off control left no attributed violations in the trace"
  exit 1
fi

echo "=== flaky-fleet leg: edge-session churn soak (ext_flaky_fleet, ASan) ==="
# Zipf connect/disconnect churn against the session layer: the binary exits
# nonzero on duplicate deliveries, losses missing from the drop ledgers,
# residual session state after the quiet tail, or a delivery-locality loss
# against the cold re-subscribe control. ASan doubles as a lifetime check on
# the buffering/adoption paths.
TMPS_AUDIT=1 TMPS_BENCH_OUT="${RESULTS}" ./build-asan/bench/ext_flaky_fleet
FLEET_JSON="${RESULTS}/BENCH_ext_flaky_fleet.json"
[[ -s "${FLEET_JSON}" ]] || {
  echo "missing ${FLEET_JSON}"; exit 1; }
grep -q '"dropped_ledger":' "${FLEET_JSON}" || {
  echo "no drop-ledger figures in ${FLEET_JSON}"; exit 1; }
grep -q '"locality":' "${FLEET_JSON}" || {
  echo "no locality figures in ${FLEET_JSON}"; exit 1; }

echo "=== overhead gate: provenance sampling cost (obs_overhead_gate) ==="
# Exits nonzero when 1/64 sampling slows the publish path by more than the
# threshold (default 2%); the JSON artifact records the measured delta.
TMPS_BENCH_OUT="${RESULTS}" ./build/bench/obs_overhead_gate
GATE_JSON="${RESULTS}/BENCH_obs_overhead_gate.json"
[[ -s "${GATE_JSON}" ]] || {
  echo "missing ${GATE_JSON}"; exit 1; }
grep -q '"delta_pct":' "${GATE_JSON}" || {
  echo "no overhead figures in ${GATE_JSON}"; exit 1; }

echo "=== regression leg: bench results vs committed baselines ==="
# fig09's JSON is reused from the audit leg; fig11 (single mover, the
# paper's latency-floor figure) runs fresh. Both are deterministic per
# seed, so tmps_benchdiff fails the leg on any gated-metric drift.
TMPS_BENCH_OUT="${RESULTS}" ./build/bench/fig11_single_client
./build/tools/tmps_benchdiff --baselines "${RESULTS}/baselines" \
  "${RESULTS}/BENCH_fig09_workload_sweep.json" \
  "${RESULTS}/BENCH_fig11_single_client.json" \
  "${RESULTS}/BENCH_micro_forwarding.json" \
  "${RESULTS}/BENCH_ext_flaky_fleet.json"

echo "=== ci.sh: all legs passed ==="
