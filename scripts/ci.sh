#!/usr/bin/env bash
# CI entry point: builds and runs the full test suite twice —
#
#   1. a plain release-ish build (the configuration the benches use);
#   2. an AddressSanitizer+UBSan build (-DTMPS_SANITIZE=address), which has
#      caught lifetime bugs the plain run cannot (use
#      TMPS_SANITIZE=thread for the data-race variant; the tcp/inproc
#      transports are the threaded code paths).
#
# Usage: scripts/ci.sh [jobs]     (default: nproc)
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${1:-$(nproc)}"

run_suite() {
  local build_dir="$1"
  shift
  echo "=== configure ${build_dir} ($*) ==="
  cmake -B "${build_dir}" -S . "$@"
  echo "=== build ${build_dir} ==="
  cmake --build "${build_dir}" -j "${JOBS}"
  echo "=== test ${build_dir} ==="
  ctest --test-dir "${build_dir}" --output-on-failure -j "${JOBS}"
}

run_suite build
run_suite build-asan -DTMPS_SANITIZE=address

echo "=== ci.sh: both suites passed ==="
