#!/usr/bin/env bash
# Build, test, and regenerate every figure — the full reproduction pipeline.
#   scripts/run_all.sh [--full]    (--full runs the paper-scale 1000 s experiments)
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--full" ]]; then
  export TMPS_FULL=1
fi

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

mkdir -p results
for b in build/bench/*; do
  if [[ -f "$b" && -x "$b" ]]; then
    name="$(basename "$b")"
    echo "=== $name ==="
    "$b" | tee "results/$name.txt"
  fi
done
echo "done; per-figure outputs in results/"
