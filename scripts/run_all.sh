#!/usr/bin/env bash
# Build, test, and regenerate every figure — the full reproduction pipeline.
#   scripts/run_all.sh [--full] [--update-baselines]
#     --full              run the paper-scale 1000 s experiments
#     --update-baselines  after the run, refresh results/baselines/ with the
#                         bench JSON the perf-regression leg diffs against
#                         (do this only after an *intentional* behavior
#                         change, and commit the result)
set -euo pipefail
cd "$(dirname "$0")/.."

UPDATE_BASELINES=0
for arg in "$@"; do
  case "${arg}" in
    --full) export TMPS_FULL=1 ;;
    --update-baselines) UPDATE_BASELINES=1 ;;
    *) echo "unknown option: ${arg}" >&2; exit 2 ;;
  esac
done

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

mkdir -p results
export TMPS_BENCH_OUT=results
for b in build/bench/*; do
  if [[ -f "$b" && -x "$b" ]]; then
    name="$(basename "$b")"
    echo "=== $name ==="
    "$b" | tee "results/$name.txt"
  fi
done
echo "done; per-figure outputs in results/ (JSON artifacts: BENCH_*.json)"

if [[ "${UPDATE_BASELINES}" -eq 1 ]]; then
  # The baselines are quick-mode runs: that is what scripts/ci.sh compares
  # against. Refuse to overwrite them with full-mode output — the config
  # mismatch would fail every subsequent CI regression leg.
  if [[ "${TMPS_FULL:-0}" == "1" ]]; then
    echo "--update-baselines refuses to run with --full: CI diffs quick-mode"
    echo "runs, so baselines must be quick-mode too."
    exit 2
  fi
  mkdir -p results/baselines
  for f in results/BENCH_fig09_workload_sweep.json \
           results/BENCH_fig11_single_client.json; do
    cp -v "$f" results/baselines/
  done
  echo "baselines refreshed; review the diff and commit results/baselines/"
fi
